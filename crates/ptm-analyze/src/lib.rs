//! Workspace invariant linter for the persistent traffic measurement stack.
//!
//! Four PRs of hardening left this workspace with conventions that matter —
//! no panics in daemon code, poison recovery on every shared lock, metric
//! and fault-site names that match their docs, protocol tags inside their
//! declared ranges, fixed-seed determinism — but that lived only in
//! comments and reviewer memory. `ptm-analyze` turns them into
//! machine-checked rules: a hand-rolled token [`scanner`] (no `syn`, no
//! dependencies) feeds a [`rules`] engine over every `.rs` file plus the
//! docs tree, and `scripts/ci.sh` fails on any finding.
//!
//! ```
//! use ptm_analyze::workspace::{FileKind, SourceFile, Workspace};
//!
//! let file = SourceFile::from_source(
//!     "ptm-rpc",
//!     "crates/ptm-rpc/src/lib.rs",
//!     FileKind::Src,
//!     "fn f() { g().unwrap(); }",
//! );
//! let ws = Workspace::in_memory(vec![file], vec![]);
//! let report = ptm_analyze::run(&ws);
//! assert!(report.findings.iter().any(|f| f.rule == "no-unwrap"));
//! ```
//!
//! Findings carry `file:line`, a stable rule id, and a one-line fix hint;
//! `// ptm-analyze: allow(rule): reason` on the preceding line suppresses a
//! finding (the reason is mandatory, and stale directives are themselves
//! findings). See `docs/ANALYSIS.md` for the rule catalogue and the JSON
//! output schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod docnames;
pub mod findings;
pub mod locks;
pub mod rules;
pub mod scanner;
pub mod syntax;
pub mod workspace;

use findings::{Finding, Report};
use workspace::Workspace;

/// The rule id under which allow-directive hygiene problems are reported.
pub const ALLOW_HYGIENE_RULE: &str = "allow-hygiene";

/// Runs every shipped rule over the workspace and applies the allow pass.
pub fn run(ws: &Workspace) -> Report {
    run_rules(ws, &rules::all())
}

/// Runs a specific rule set (the binary's `check` uses [`run`]).
pub fn run_rules(ws: &Workspace, active: &[Box<dyn rules::Rule>]) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for rule in active {
        rule.check(ws, &mut raw);
    }

    // Allow pass: a directive with a reason on the finding's line or the
    // line above suppresses it; every directive must be well-formed and
    // must actually suppress something.
    let mut suppressed = 0usize;
    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.allows.len()])
        .collect();
    let mut findings: Vec<Finding> = Vec::new();
    for finding in raw {
        let hit = ws.files.iter().enumerate().find_map(|(fi, file)| {
            if file.rel_path != finding.path {
                return None;
            }
            file.allows
                .iter()
                .position(|a| {
                    a.rule == finding.rule
                        && a.reason.is_some()
                        && (a.line == finding.line || a.line + 1 == finding.line)
                })
                .map(|ai| (fi, ai))
        });
        match hit {
            Some((fi, ai)) => {
                used[fi][ai] = true;
                suppressed += 1;
            }
            None => findings.push(finding),
        }
    }
    for (fi, file) in ws.files.iter().enumerate() {
        for (ai, allow) in file.allows.iter().enumerate() {
            if allow.reason.is_none() {
                findings.push(Finding {
                    rule: ALLOW_HYGIENE_RULE,
                    path: file.rel_path.clone(),
                    line: allow.line,
                    message: format!(
                        "allow({}) directive is missing its mandatory reason",
                        allow.rule
                    ),
                    hint: "write `// ptm-analyze: allow(rule): why this is sound`".to_string(),
                });
            } else if !used[fi][ai] {
                findings.push(Finding {
                    rule: ALLOW_HYGIENE_RULE,
                    path: file.rel_path.clone(),
                    line: allow.line,
                    message: format!(
                        "allow({}) directive suppresses nothing on the next line",
                        allow.rule
                    ),
                    hint: "delete the stale directive (or fix its rule id / placement)".to_string(),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    Report {
        findings,
        files_scanned: ws.files.len(),
        suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workspace::{FileKind, SourceFile};

    fn ws_with(src: &str) -> Workspace {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        Workspace::in_memory(vec![file], vec![])
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts() {
        let report = run_rules(
            &ws_with(
                "fn f() {\n    // ptm-analyze: allow(no-unwrap): fixture proves suppression\n    g().unwrap();\n}\n",
            ),
            &[Box::new(rules::NoUnwrap)],
        );
        assert!(report.findings.is_empty(), "got: {:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn allow_without_reason_does_not_suppress_and_is_flagged() {
        let report = run_rules(
            &ws_with("fn f() {\n    // ptm-analyze: allow(no-unwrap)\n    g().unwrap();\n}\n"),
            &[Box::new(rules::NoUnwrap)],
        );
        assert!(report.findings.iter().any(|f| f.rule == "no-unwrap"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == ALLOW_HYGIENE_RULE && f.message.contains("missing")));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let report = run_rules(
            &ws_with("// ptm-analyze: allow(no-unwrap): nothing here to allow\nfn f() {}\n"),
            &[Box::new(rules::NoUnwrap)],
        );
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, ALLOW_HYGIENE_RULE);
        assert!(report.findings[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn wrong_rule_id_does_not_suppress() {
        let report = run_rules(
            &ws_with(
                "fn f() {\n    // ptm-analyze: allow(determinism): wrong rule id\n    g().unwrap();\n}\n",
            ),
            &[Box::new(rules::NoUnwrap)],
        );
        assert!(report.findings.iter().any(|f| f.rule == "no-unwrap"));
        assert!(report.findings.iter().any(|f| f.rule == ALLOW_HYGIENE_RULE));
    }

    #[test]
    fn findings_are_sorted_and_counted() {
        let a = SourceFile::from_source(
            "ptm-rpc",
            "crates/ptm-rpc/src/b.rs",
            FileKind::Src,
            "fn f() { g().unwrap(); }",
        );
        let b = SourceFile::from_source(
            "ptm-rpc",
            "crates/ptm-rpc/src/a.rs",
            FileKind::Src,
            "fn f() { g().unwrap(); }",
        );
        let report = run_rules(
            &Workspace::in_memory(vec![a, b], vec![]),
            &[Box::new(rules::NoUnwrap)],
        );
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].path < report.findings[1].path);
        assert_eq!(report.files_scanned, 2);
    }
}
