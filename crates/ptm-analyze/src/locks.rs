//! Lock-site extraction and the interprocedural lock-order graph.
//!
//! Locks are keyed by the *field or binding name* they are reached
//! through (`queues` for `self.queues.lock()`, `shards` for
//! `self.shards.read()`): this workspace names its locks once at the
//! struct field and threads them by reference, so the name is a stable
//! proxy for lock identity without type resolution. Two different locks
//! sharing a name alias onto one node — which is why same-key edges are
//! never reported as cycles (see `docs/ANALYSIS.md`).
//!
//! A guard is held from its acquisition to the end of the innermost
//! enclosing block for `let`-bound guards (truncated at an explicit
//! `drop(binding)`), or to the end of the statement for temporaries.
//! While held, every later acquisition in the extent — direct, or
//! transitively through a call — adds an ordered edge. A cycle in the
//! resulting key graph is a potential deadlock.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::scanner::TokenKind;
use crate::syntax;
use crate::workspace::Workspace;

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity: the field/binding name the lock is reached through.
    pub key: String,
    /// Id of the acquiring fn in the [`CallGraph`].
    pub fn_id: usize,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// Token index of the acquisition in the file's token stream.
    pub token: usize,
    /// Last token index (inclusive) while the guard is held.
    pub extent_end: usize,
    /// Name of the guard-returning helper when acquired through one
    /// (`lock_writer`), `None` for a direct `.lock()`/`.read()`/`.write()`.
    pub via: Option<String>,
}

/// An ordered edge in the lock-order graph: `from` is held while `to` is
/// acquired, with a human-readable witness of where.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Key held first.
    pub from: String,
    /// Key acquired while `from` is held.
    pub to: String,
    /// Witness: fn names and lines proving the ordering.
    pub witness: String,
    /// File of the holding site (for finding anchors).
    pub path: String,
    /// Line of the holding site.
    pub line: u32,
}

/// A cycle in the lock-order graph — a potential deadlock.
#[derive(Debug, Clone)]
pub struct LockCycle {
    /// The keys on the cycle, in traversal order.
    pub keys: Vec<String>,
    /// One witness string per edge of the cycle.
    pub witnesses: Vec<String>,
    /// Anchor file/line (the first edge's holding site).
    pub path: String,
    /// Anchor line.
    pub line: u32,
}

/// The full lock analysis over a call graph's crates.
pub struct LockAnalysis {
    /// Lock sites per fn (parallel to the graph's `fns`).
    pub sites: Vec<Vec<LockSite>>,
    /// Deduplicated ordered edges.
    pub edges: Vec<LockEdge>,
    /// Cycles (excluding single-key self-edges, which are aliasing noise).
    pub cycles: Vec<LockCycle>,
}

/// Runs the lock analysis over every fn in `graph`.
pub fn analyze(ws: &Workspace, graph: &CallGraph) -> LockAnalysis {
    let sites: Vec<Vec<LockSite>> = graph
        .fns
        .iter()
        .enumerate()
        .map(|(id, _)| extract_sites(ws, graph, id))
        .collect();

    // May-acquire fixpoint: fn -> key -> next hop (None = acquired here).
    let mut may: Vec<BTreeMap<String, Option<usize>>> = sites
        .iter()
        .map(|s| {
            s.iter()
                .map(|site| (site.key.clone(), None))
                .collect::<BTreeMap<_, _>>()
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..graph.fns.len() {
            let mut add: Vec<(String, usize)> = Vec::new();
            for &(_, callee) in &graph.edges[id] {
                for key in may[callee].keys() {
                    if !may[id].contains_key(key) {
                        add.push((key.clone(), callee));
                    }
                }
            }
            for (key, callee) in add {
                may[id].entry(key).or_insert(Some(callee));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edge construction: for each held site, every later acquisition in
    // the extent — a sibling site, or a call whose may-acquire is nonempty.
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (id, fn_sites) in sites.iter().enumerate() {
        let f = &graph.fns[id];
        let path = ws.files[f.file].rel_path.clone();
        for s in fn_sites {
            for s2 in fn_sites {
                if s2.token > s.token && s2.token <= s.extent_end && s2.key != s.key {
                    push_edge(
                        &mut edges,
                        &mut seen,
                        &s.key,
                        &s2.key,
                        format!(
                            "{}: holds `{}` (line {}) while locking `{}` (line {})",
                            f.name, s.key, s.line, s2.key, s2.line
                        ),
                        &path,
                        s.line,
                    );
                }
            }
            for &(si, callee) in &graph.edges[id] {
                let call = &graph.calls[id][si];
                if call.token <= s.token || call.token > s.extent_end {
                    continue;
                }
                for (key, _) in may[callee].iter() {
                    if *key == s.key {
                        continue;
                    }
                    let chain = hop_chain(graph, &may, callee, key);
                    push_edge(
                        &mut edges,
                        &mut seen,
                        &s.key,
                        key,
                        format!(
                            "{}: holds `{}` (line {}) while calling {} (line {}); {} locks `{}`",
                            f.name, s.key, s.line, call.name, call.line, chain, key
                        ),
                        &path,
                        s.line,
                    );
                }
            }
        }
    }

    let cycles = find_cycles(&edges);
    LockAnalysis {
        sites,
        edges,
        cycles,
    }
}

/// Renders the lock graph as the `out/lockgraph.json` CI artifact.
pub fn render_lockgraph_json(analysis: &LockAnalysis, graph: &CallGraph) -> String {
    use std::fmt::Write as _;
    let mut acquisitions: BTreeMap<&str, usize> = BTreeMap::new();
    for per_fn in &analysis.sites {
        for s in per_fn {
            *acquisitions.entry(s.key.as_str()).or_default() += 1;
        }
    }
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"nodes\": [\n");
    let node_count = acquisitions.len();
    for (i, (key, count)) in acquisitions.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"key\": {}, \"acquisitions\": {}}}{}",
            json_str(key),
            count,
            if i + 1 < node_count { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"edges\": [\n");
    for (i, e) in analysis.edges.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"from\": {}, \"to\": {}, \"at\": {}, \"witness\": {}}}{}",
            json_str(&e.from),
            json_str(&e.to),
            json_str(&format!("{}:{}", e.path, e.line)),
            json_str(&e.witness),
            if i + 1 < analysis.edges.len() {
                ","
            } else {
                ""
            }
        );
    }
    out.push_str("  ],\n  \"cycles\": [\n");
    for (i, c) in analysis.cycles.iter().enumerate() {
        let keys: Vec<String> = c.keys.iter().map(|k| json_str(k)).collect();
        let witnesses: Vec<String> = c.witnesses.iter().map(|w| json_str(w)).collect();
        let _ = writeln!(
            out,
            "    {{\"keys\": [{}], \"witnesses\": [{}]}}{}",
            keys.join(", "),
            witnesses.join(", "),
            if i + 1 < analysis.cycles.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = write!(out, "  ],\n  \"fns_analyzed\": {}\n}}\n", graph.fns.len());
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_edge(
    edges: &mut Vec<LockEdge>,
    seen: &mut BTreeSet<(String, String)>,
    from: &str,
    to: &str,
    witness: String,
    path: &str,
    line: u32,
) {
    if seen.insert((from.to_string(), to.to_string())) {
        edges.push(LockEdge {
            from: from.to_string(),
            to: to.to_string(),
            witness,
            path: path.to_string(),
            line,
        });
    }
}

/// Renders the call chain through which `fn_id` may acquire `key`
/// (`lock_writer -> acquire`, or just the fn name for a direct site).
fn hop_chain(
    graph: &CallGraph,
    may: &[BTreeMap<String, Option<usize>>],
    fn_id: usize,
    key: &str,
) -> String {
    let mut names = vec![graph.fns[fn_id].name.clone()];
    let mut cur = fn_id;
    let mut fuel = 32;
    while let Some(Some(next)) = may[cur].get(key) {
        names.push(graph.fns[*next].name.clone());
        cur = *next;
        fuel -= 1;
        if fuel == 0 {
            break;
        }
    }
    names.join(" -> ")
}

/// Extracts lock sites from one fn: direct arity-0 `.lock()` / `.read()` /
/// `.write()` calls, plus `let`-bound calls to guard-returning helpers.
fn extract_sites(ws: &Workspace, graph: &CallGraph, fn_id: usize) -> Vec<LockSite> {
    let f = &graph.fns[fn_id];
    if f.in_test {
        return Vec::new();
    }
    let toks = &ws.files[f.file].tokens;
    let mut skip = syntax::nested_spans(&graph.fns, f);
    skip.extend(syntax::spawn_arg_spans(toks, f.body));
    let mut out = Vec::new();
    let (start, end) = f.body;
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        if syntax::in_spans(&skip, i) {
            continue;
        }
        let t = &toks[i];
        let is_acquire_name = t.is_ident("lock") || t.is_ident("read") || t.is_ident("write");
        if is_acquire_name
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            // Arity-0 method call: a blocking Mutex/RwLock acquisition
            // (io::Read::read / Write::write always take arguments).
            let Some(key) = receiver_key(toks, i - 1) else {
                continue;
            };
            let (extent_end, binding) = extent(toks, i, end);
            let extent_end = truncate_at_drop(toks, i, extent_end, binding.as_deref());
            out.push(LockSite {
                key,
                fn_id,
                line: t.line,
                token: i,
                extent_end,
                via: None,
            });
        }
    }
    // `let`-bound calls to guard-returning helpers hand the callee's lock
    // to this fn for the binding's extent.
    for &(si, callee) in &graph.edges[fn_id] {
        let call = &graph.calls[fn_id][si];
        let callee_fn = &graph.fns[callee];
        if !callee_fn.returns_guard {
            continue;
        }
        let (extent_end, binding) = extent(toks, call.token, end);
        let extent_end = truncate_at_drop(toks, call.token, extent_end, binding.as_deref());
        // The helper's own direct keys are what the caller now holds.
        for key in direct_keys(ws, graph, callee) {
            out.push(LockSite {
                key,
                fn_id,
                line: call.line,
                token: call.token,
                extent_end,
                via: Some(callee_fn.name.clone()),
            });
        }
    }
    out.sort_by_key(|s| s.token);
    out
}

/// Direct lock keys of a fn (no transitive closure) — used for
/// guard-returning helpers, whose body *is* the acquisition.
fn direct_keys(ws: &Workspace, graph: &CallGraph, fn_id: usize) -> Vec<String> {
    let f = &graph.fns[fn_id];
    let toks = &ws.files[f.file].tokens;
    let mut keys = Vec::new();
    let (start, end) = f.body;
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(key) = receiver_key(toks, i - 1) {
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
    }
    keys
}

/// The field/binding name a method call is reached through: for
/// `self.pool.queues.lock()` the token before the final `.` — the last
/// path segment, which names the lock field itself.
fn receiver_key(toks: &[crate::scanner::Token], dot: usize) -> Option<String> {
    let prev = toks.get(dot.checked_sub(1)?)?;
    if prev.kind == TokenKind::Ident && !prev.is_ident("self") && !prev.is_ident("Self") {
        return Some(prev.text.clone());
    }
    None
}

/// Computes the held extent of a guard acquired at token `site` inside a
/// body ending at `body_end`: `(extent end, let-binding name if any)`.
fn extent(toks: &[crate::scanner::Token], site: usize, body_end: usize) -> (usize, Option<String>) {
    let binding = let_binding(toks, site);
    let mut depth = 0i32;
    let mut j = site;
    while j <= body_end && j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                // Innermost enclosing block closed: the guard dies here
                // whether let-bound or temporary.
                return (j, binding);
            }
        } else if t.is_punct(';') && depth == 0 && binding.is_none() {
            // Temporary guard: dropped at the end of its statement.
            return (j, binding);
        }
        j += 1;
    }
    (body_end, binding)
}

/// Suffix methods that keep returning the guard, so a `let` through them
/// still binds it (`.unwrap()`, `.expect("..")`, poison recovery).
const GUARD_SUFFIXES: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

/// Finds the `let` binding that binds the *guard* acquired at `site`, or
/// `None` when the guard is a temporary. `let v = *a.lock().unwrap();`
/// binds the copied value — the guard dies at the `;` — so the binding
/// only counts when the receiver chain starts right after the `=` and
/// nothing but guard-preserving suffixes follow the acquisition.
fn let_binding(toks: &[crate::scanner::Token], site: usize) -> Option<String> {
    // Statement start: previous `;`, `{`, or `}` at depth zero.
    let mut depth = 0i32;
    let mut j = site;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
    }
    let mut k = if j == 0 { 0 } else { j + 1 };
    if !toks.get(k).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    k += 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name = toks
        .get(k)
        .filter(|t| t.kind == TokenKind::Ident)?
        .text
        .clone();
    k += 1;
    // Optional `: Type` annotation before the `=`.
    if toks.get(k).is_some_and(|t| t.is_punct(':')) {
        let mut angle = 0i32;
        while k < site {
            let t = &toks[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.is_punct('=') && angle <= 0 {
                break;
            }
            k += 1;
        }
    }
    if !toks.get(k).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    // The receiver chain (`shared . writer .` for `shared.writer.lock()`,
    // or just the helper name for `lock_writer(..)`) must start right
    // after the `=` — a `*`, `&`, or operator in between means the
    // binding holds a derived value, not the guard.
    let mut chain_start = site;
    while chain_start >= 2
        && toks[chain_start - 1].is_punct('.')
        && toks[chain_start - 2].kind == TokenKind::Ident
    {
        chain_start -= 2;
    }
    if chain_start != k + 1 {
        return None;
    }
    // Everything after the acquisition's argument list must be a chain of
    // guard-preserving suffix calls, ending at the statement `;`.
    let mut p = site + 1;
    if !toks.get(p).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    p = skip_balanced(toks, p);
    loop {
        match toks.get(p) {
            Some(t) if t.is_punct(';') => return Some(name),
            Some(t) if t.is_punct('.') => {
                let m = toks.get(p + 1)?;
                if m.kind != TokenKind::Ident
                    || !GUARD_SUFFIXES.contains(&m.text.as_str())
                    || !toks.get(p + 2).is_some_and(|t| t.is_punct('('))
                {
                    return None;
                }
                p = skip_balanced(toks, p + 2);
            }
            Some(t) if t.is_punct('?') => p += 1,
            _ => return None,
        }
    }
}

/// Returns the index just past the group opened at `open` (`(`..`)`).
fn skip_balanced(toks: &[crate::scanner::Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Truncates a guard extent at an explicit `drop(binding)` call.
fn truncate_at_drop(
    toks: &[crate::scanner::Token],
    site: usize,
    extent_end: usize,
    binding: Option<&str>,
) -> usize {
    let Some(name) = binding else {
        return extent_end;
    };
    let mut j = site;
    while j + 3 <= extent_end && j + 3 < toks.len() {
        j += 1;
        if toks[j].is_ident("drop")
            && toks[j + 1].is_punct('(')
            && toks[j + 2].is_ident(name)
            && toks[j + 3].is_punct(')')
        {
            return j;
        }
    }
    extent_end
}

/// Finds cycles in the key graph via DFS, skipping same-key self-edges.
/// At most one cycle is reported per starting key, and each distinct key
/// set is reported once.
fn find_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        if e.from != e.to {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
    }
    let mut cycles: Vec<LockCycle> = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut path: Vec<&LockEdge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        if let Some(cycle) = dfs_cycle(start, start, &adj, &mut path, &mut on_path, 0) {
            let mut keys: Vec<String> = cycle.iter().map(|e| e.from.clone()).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            if reported.insert(sorted) {
                let witnesses = cycle.iter().map(|e| e.witness.clone()).collect();
                let anchor = cycle[0];
                keys.push(keys[0].clone());
                cycles.push(LockCycle {
                    keys,
                    witnesses,
                    path: anchor.path.clone(),
                    line: anchor.line,
                });
            }
        }
    }
    cycles
}

fn dfs_cycle<'a>(
    start: &str,
    cur: &str,
    adj: &BTreeMap<&str, Vec<&'a LockEdge>>,
    path: &mut Vec<&'a LockEdge>,
    on_path: &mut Vec<&'a str>,
    depth: usize,
) -> Option<Vec<&'a LockEdge>> {
    if depth > 16 {
        return None;
    }
    for e in adj.get(cur).map(|v| v.as_slice()).unwrap_or(&[]) {
        // Self-edges were filtered out of `adj`, so `e.to == start` always
        // closes a genuine multi-key cycle.
        if e.to == start {
            path.push(e);
            let found = path.clone();
            path.pop();
            return Some(found);
        }
        if on_path.iter().any(|k| *k == e.to) {
            continue;
        }
        path.push(e);
        on_path.push(e.to.as_str());
        if let Some(found) = dfs_cycle(start, &e.to, adj, path, on_path, depth + 1) {
            return Some(found);
        }
        on_path.pop();
        path.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    fn analyzed(src: &str) -> (Workspace, CallGraph) {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let graph = CallGraph::build(&ws, &["ptm-rpc"]);
        (ws, graph)
    }

    #[test]
    fn nested_acquisitions_produce_an_ordered_edge() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
                 let gb = b.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        assert!(an.edges.iter().any(|e| e.from == "a" && e.to == "b"));
        assert!(!an.edges.iter().any(|e| e.from == "b"));
        assert!(an.cycles.is_empty());
    }

    #[test]
    fn inverted_orders_across_fns_form_a_cycle_with_witnesses() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
                 let gb = b.lock().unwrap();\n\
             }\n\
             fn g(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let gb = b.lock().unwrap();\n\
                 let ga = a.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        assert_eq!(an.cycles.len(), 1, "edges: {:?}", an.edges);
        let c = &an.cycles[0];
        assert_eq!(c.witnesses.len(), 2);
        assert!(c.witnesses[0].contains("holds"));
    }

    #[test]
    fn scoped_release_prevents_the_edge() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 {\n\
                     let ga = a.lock().unwrap();\n\
                 }\n\
                 let gb = b.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        assert!(
            !an.edges.iter().any(|e| e.from == "a" && e.to == "b"),
            "edges: {:?}",
            an.edges
        );
    }

    #[test]
    fn explicit_drop_truncates_the_extent() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
                 drop(ga);\n\
                 let gb = b.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        assert!(
            !an.edges.iter().any(|e| e.from == "a" && e.to == "b"),
            "edges: {:?}",
            an.edges
        );
    }

    #[test]
    fn temporary_guard_dies_at_its_statement() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let v = *a.lock().unwrap();\n\
                 let gb = b.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        assert!(
            !an.edges.iter().any(|e| e.from == "a" && e.to == "b"),
            "edges: {:?}",
            an.edges
        );
    }

    #[test]
    fn interprocedural_edges_flow_through_calls() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
                 helper(b);\n\
             }\n\
             fn helper(b: &Mutex<u32>) {\n\
                 let gb = b.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        let edge = an
            .edges
            .iter()
            .find(|e| e.from == "a" && e.to == "b")
            .expect("interprocedural edge");
        assert!(edge.witness.contains("helper"), "witness: {}", edge.witness);
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition_in_the_caller() {
        let (ws, g) = analyzed(
            "fn lock_writer(w: &Mutex<u32>) -> MutexGuard<'_, u32> {\n\
                 w.lock().unwrap()\n\
             }\n\
             fn f(w: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let guard = lock_writer(w);\n\
                 let gb = b.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        assert!(
            an.edges.iter().any(|e| e.from == "w" && e.to == "b"),
            "edges: {:?}",
            an.edges
        );
    }

    #[test]
    fn same_key_self_edges_are_not_cycles() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
                 let gb = b.lock().unwrap();\n\
             }\n\
             fn g2(x: &Mutex<u32>) {\n\
                 let g1 = x.lock().unwrap();\n\
                 other(x);\n\
             }\n\
             fn other(x: &Mutex<u32>) {\n\
                 let g2 = x.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        assert!(an.cycles.is_empty(), "cycles: {:?}", an.cycles);
    }

    #[test]
    fn lockgraph_json_is_well_formed() {
        let (ws, g) = analyzed(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
                 let gb = b.lock().unwrap();\n\
             }\n",
        );
        let an = analyze(&ws, &g);
        let json = render_lockgraph_json(&an, &g);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"from\": \"a\""));
        assert!(json.contains("\"fns_analyzed\": 1"));
    }
}
