//! Golden-file pin of the `check --format json` report shape.
//!
//! CI archives `out/analysis.json` and downstream tooling parses it, so
//! the shape is a contract: `schema_version` names the contract revision
//! and this test freezes the byte-exact rendering of a representative
//! report. Any change to field names, ordering, or escaping shows up as
//! a diff against `golden/report.json` — bump
//! [`ptm_analyze::findings::JSON_SCHEMA_VERSION`] and regenerate the
//! golden file deliberately, never accidentally.

#![forbid(unsafe_code)]

use ptm_analyze::findings::{Finding, Report, JSON_SCHEMA_VERSION};

/// A fixed report exercising every field plus string escaping.
fn sample_report() -> Report {
    Report {
        findings: vec![
            Finding {
                rule: "determinism",
                path: "crates/ptm-sim/src/runner.rs".into(),
                line: 12,
                message: "`Instant::now` in seeded crate `ptm-sim` breaks fixed-seed \
                          reproducibility"
                    .into(),
                hint: "thread the time in as a parameter".into(),
            },
            Finding {
                rule: "no-unwrap",
                path: "crates/ptm-store/src/segment.rs".into(),
                line: 7,
                message: "`.unwrap()` in non-test code — say \"why\"\nor propagate".into(),
                hint: "propagate the error with `?`".into(),
            },
        ],
        files_scanned: 42,
        suppressed: 3,
    }
}

#[test]
fn json_report_matches_golden_file() {
    let expected = include_str!("golden/report.json");
    let actual = sample_report().render_json();
    assert_eq!(
        actual, expected,
        "JSON report shape drifted from tests/golden/report.json — if the \
         change is intentional, bump JSON_SCHEMA_VERSION and regenerate the \
         golden file"
    );
}

#[test]
fn golden_file_declares_the_current_schema_version() {
    let expected = include_str!("golden/report.json");
    assert!(
        expected.contains(&format!("\"schema_version\": {JSON_SCHEMA_VERSION},")),
        "golden file and JSON_SCHEMA_VERSION are out of sync"
    );
}

#[test]
fn empty_report_keeps_the_same_top_level_fields() {
    let json = Report {
        findings: vec![],
        files_scanned: 0,
        suppressed: 0,
    }
    .render_json();
    for field in [
        "schema_version",
        "files_scanned",
        "suppressed",
        "finding_count",
        "findings",
    ] {
        assert!(
            json.contains(&format!("\"{field}\"")),
            "empty report is missing `{field}`:\n{json}"
        );
    }
}
