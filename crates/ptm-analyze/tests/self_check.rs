//! The linter must hold on the repository that ships it: `ptm-analyze
//! check` is part of `scripts/ci.sh`, so a clean self-check here is the
//! same gate the CI step enforces, minus the process boundary.

use std::path::PathBuf;

use ptm_analyze::workspace::Workspace;

fn repo_root() -> PathBuf {
    // crates/ptm-analyze -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn repository_is_clean_under_every_rule() {
    let ws = Workspace::load(&repo_root()).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace discovery looks broken: only {} files found",
        ws.files.len()
    );
    let report = ptm_analyze::run(&ws);
    assert!(
        report.findings.is_empty(),
        "ptm-analyze found violations in the repository:\n{}",
        report.render_text()
    );
}

#[test]
fn known_invariants_are_actually_scanned() {
    // Guard against the self-check passing vacuously: the files the rules
    // care about must be in the scan set, non-empty, and classified right.
    let ws = Workspace::load(&repo_root()).expect("workspace loads");
    let proto = ws
        .files
        .iter()
        .find(|f| f.rel_path == "crates/ptm-rpc/src/proto.rs")
        .expect("proto.rs is scanned");
    assert!(proto.tokens.iter().any(|t| t.text.starts_with("TAG_")));
    let fault_lib = ws
        .files
        .iter()
        .find(|f| f.rel_path == "crates/ptm-fault/src/lib.rs")
        .expect("ptm-fault lib.rs is scanned");
    assert!(fault_lib.tokens.iter().any(|t| t.is_ident("sites")));
    assert!(ws.docs.contains_key("docs/OBSERVABILITY.md"));
    assert!(ws.docs.contains_key("docs/FAULTS.md"));
}
