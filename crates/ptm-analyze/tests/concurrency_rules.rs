//! End-to-end fixtures for the three concurrency rules, run through the
//! public `ptm_analyze::run` entry point (full rule registry + allow
//! pass) rather than the rules' own unit harnesses. Each fixture is a
//! minimal reproduction of the bug class the rule exists for, paired
//! with the fixed variant that must come back clean.

#![forbid(unsafe_code)]

use ptm_analyze::findings::Finding;
use ptm_analyze::workspace::{FileKind, SourceFile, Workspace};

/// Runs the full analyzer over one in-memory server-crate file and
/// returns only the findings of `rule` (other rules may legitimately
/// fire on a fixture — e.g. `no-unwrap` on a `.lock().unwrap()`).
fn findings_for(rule: &str, src: &str) -> Vec<Finding> {
    let file = SourceFile::from_source(
        "ptm-rpc",
        "crates/ptm-rpc/src/fixture.rs",
        FileKind::Src,
        src,
    );
    let ws = Workspace::in_memory(vec![file], vec![]);
    ptm_analyze::run(&ws)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn lock_inversion_pair_yields_one_cycle_with_witness_chain() {
    let findings = findings_for(
        "lock-order",
        "fn ingest(queue: &Mutex<u32>, index: &Mutex<u32>) {\n\
             let q = queue.lock().unwrap();\n\
             let i = index.lock().unwrap();\n\
         }\n\
         fn compact(queue: &Mutex<u32>, index: &Mutex<u32>) {\n\
             let i = index.lock().unwrap();\n\
             let q = queue.lock().unwrap();\n\
         }\n",
    );
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let message = &findings[0].message;
    assert!(message.contains("potential deadlock"), "message: {message}");
    // The witness names both locks and both functions: who holds what
    // while acquiring what.
    for needle in ["queue", "index", "ingest", "compact", "holds"] {
        assert!(
            message.contains(needle),
            "message lacks `{needle}`: {message}"
        );
    }
}

#[test]
fn consistent_lock_order_is_clean() {
    let findings = findings_for(
        "lock-order",
        "fn ingest(queue: &Mutex<u32>, index: &Mutex<u32>) {\n\
             let q = queue.lock().unwrap();\n\
             let i = index.lock().unwrap();\n\
         }\n\
         fn compact(queue: &Mutex<u32>, index: &Mutex<u32>) {\n\
             let q = queue.lock().unwrap();\n\
             let i = index.lock().unwrap();\n\
         }\n",
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn sleep_reachable_from_reactor_root_yields_one_finding_with_chain() {
    let findings = findings_for(
        "reactor-blocking",
        "// ptm-analyze: reactor-root\n\
         fn event_loop() { idle_backoff(); }\n\
         fn idle_backoff() { std::thread::sleep(STEP); }\n",
    );
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let message = &findings[0].message;
    assert!(message.contains("thread::sleep"), "message: {message}");
    assert!(
        message.contains("event_loop -> idle_backoff"),
        "witness chain missing: {message}"
    );
}

#[test]
fn sleep_behind_the_worker_pool_is_clean() {
    let findings = findings_for(
        "reactor-blocking",
        "// ptm-analyze: reactor-root\n\
         fn event_loop() { submit(); }\n\
         fn submit() {}\n\
         // ptm-analyze: worker-entry\n\
         fn worker_loop() { idle_backoff(); }\n\
         fn idle_backoff() { std::thread::sleep(STEP); }\n",
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn unbalanced_gauge_increment_yields_one_finding() {
    let findings = findings_for(
        "gauge-balance",
        "fn accept(s: &Server) { s.active_conns.fetch_add(1, Ordering::SeqCst); }\n",
    );
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let message = &findings[0].message;
    assert!(message.contains("active_conns"), "message: {message}");
    assert!(message.contains("never"), "message: {message}");
}

#[test]
fn gauge_with_drop_guard_decrement_is_clean() {
    let findings = findings_for(
        "gauge-balance",
        "fn accept(s: &Server) -> ConnGuard { s.active_conns.fetch_add(1, Ordering::SeqCst); ConnGuard }\n\
         impl Drop for ConnGuard {\n\
             fn drop(&mut self) { self.active_conns.fetch_sub(1, Ordering::SeqCst); }\n\
         }\n",
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}
