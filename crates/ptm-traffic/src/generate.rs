//! Population generators implementing the paper's evaluation workloads
//! (Sec. VI-A / VI-B).
//!
//! Both evaluation sections follow the same recipe: pick the number of
//! *common* (persistent) vehicles, then pad each measurement period with
//! freshly generated *transient* vehicles up to the period's total volume.
//!
//! # A deliberate statistical shortcut
//!
//! A transient vehicle exists for exactly one record. Its encoded bit index
//! — the hash of freshly drawn random secrets — is a uniformly random value,
//! so [`fill_transients`] sets `count` uniform bits directly instead of
//! materialising secrets and hashing them. This is statistically identical
//! (a unit test below checks it against the exact procedure) and makes the
//! 1000-run Table I sweep tractable. Common vehicles always go through the
//! real encoding path because their cross-period / cross-location
//! correlation is exactly what the estimators measure.

use crate::triptable::TripTable;
use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::record::TrafficRecord;
use rand::Rng;

use crate::network::NodeId;

/// Volume bounds for the synthetic workload: "randomly generated from the
/// range of (2000, 10000]" (Sec. VI-B).
pub const SYNTHETIC_VOLUME_RANGE: (u64, u64) = (2_000, 10_000);

/// A single-location persistent-traffic scenario: per-period volumes and
/// the persistent core size `n_*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointScenario {
    /// Total vehicles passing the location in each period.
    pub volumes: Vec<u64>,
    /// Number of common vehicles present in every period (`n_*`).
    pub persistent: u64,
}

impl PointScenario {
    /// The paper's synthetic point workload: `t` volumes uniform in
    /// `(2000, 10000]`, persistent core = `fraction × n_min`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `fraction` is outside `[0, 1]`.
    pub fn synthetic<R: Rng + ?Sized>(rng: &mut R, t: usize, fraction: f64) -> Self {
        assert!(t >= 1, "need at least one period");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let (lo, hi) = SYNTHETIC_VOLUME_RANGE;
        let volumes: Vec<u64> = (0..t).map(|_| rng.gen_range(lo + 1..=hi)).collect();
        let n_min = *volumes.iter().min().expect("non-empty");
        Self {
            volumes,
            persistent: (fraction * n_min as f64).round() as u64,
        }
    }

    /// Smallest per-period volume (`n_min`).
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no periods.
    pub fn n_min(&self) -> u64 {
        *self.volumes.iter().min().expect("non-empty scenario")
    }

    /// Number of periods `t`.
    pub fn num_periods(&self) -> usize {
        self.volumes.len()
    }
}

/// A two-location persistent-traffic scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P2pScenario {
    /// Per-period volumes at `L`.
    pub volumes_l: Vec<u64>,
    /// Per-period volumes at `L'`.
    pub volumes_lp: Vec<u64>,
    /// Number of vehicles passing both locations in every period (`n''`).
    pub persistent: u64,
}

impl P2pScenario {
    /// The paper's synthetic point-to-point workload (Sec. VI-B): both
    /// locations draw volumes uniform in `(2000, 10000]`, persistent core
    /// = `fraction × min(n_min, n'_min)`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `fraction` is outside `[0, 1]`.
    pub fn synthetic<R: Rng + ?Sized>(rng: &mut R, t: usize, fraction: f64) -> Self {
        assert!(t >= 1, "need at least one period");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let (lo, hi) = SYNTHETIC_VOLUME_RANGE;
        let volumes_l: Vec<u64> = (0..t).map(|_| rng.gen_range(lo + 1..=hi)).collect();
        let volumes_lp: Vec<u64> = (0..t).map(|_| rng.gen_range(lo + 1..=hi)).collect();
        let min_l = *volumes_l.iter().min().expect("non-empty");
        let min_lp = *volumes_lp.iter().min().expect("non-empty");
        let n_min = min_l.min(min_lp);
        Self {
            volumes_l,
            volumes_lp,
            persistent: (fraction * n_min as f64).round() as u64,
        }
    }

    /// The paper's real-data workload (Sec. VI-A): common vehicles from the
    /// trip-table pair volume between `l` and `l_prime`; per-period totals
    /// are each location's involving volume, constant across the `t`
    /// periods.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or a node is out of range for the table.
    pub fn from_trip_table(table: &TripTable, l: NodeId, l_prime: NodeId, t: usize) -> Self {
        assert!(t >= 1, "need at least one period");
        let n = table.involving_volume(l);
        let n_prime = table.involving_volume(l_prime);
        Self {
            volumes_l: vec![n; t],
            volumes_lp: vec![n_prime; t],
            persistent: table.pair_volume(l, l_prime),
        }
    }

    /// Number of periods `t`.
    pub fn num_periods(&self) -> usize {
        self.volumes_l.len()
    }

    /// Transient count at `L` for period `j` (`n_j − n''`).
    ///
    /// # Panics
    ///
    /// Panics if the period volume is below the persistent core.
    pub fn transients_l(&self, period: usize) -> u64 {
        self.volumes_l[period]
            .checked_sub(self.persistent)
            .expect("period volume below persistent core")
    }

    /// Transient count at `L'` for period `j` (`n'_j − n''`).
    ///
    /// # Panics
    ///
    /// Panics if the period volume is below the persistent core.
    pub fn transients_lp(&self, period: usize) -> u64 {
        self.volumes_lp[period]
            .checked_sub(self.persistent)
            .expect("period volume below persistent core")
    }
}

/// The persistent fleet: common vehicles with real secret material, encoded
/// through the paper's exact hash chain.
#[derive(Debug, Clone)]
pub struct CommonFleet {
    vehicles: Vec<VehicleSecrets>,
}

impl CommonFleet {
    /// Generates `n` vehicles with `s` representative constants each.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, n: u64, s: u32) -> Self {
        Self {
            vehicles: (0..n).map(|_| VehicleSecrets::generate(rng, s)).collect(),
        }
    }

    /// Number of vehicles in the fleet.
    pub fn len(&self) -> usize {
        self.vehicles.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.vehicles.is_empty()
    }

    /// The vehicles themselves.
    pub fn vehicles(&self) -> &[VehicleSecrets] {
        &self.vehicles
    }

    /// Precomputes each vehicle's bit index at `location` for records of
    /// `m` bits.
    ///
    /// A common vehicle sets the *same* bit at the same location in every
    /// period, so sweeping `t` periods only needs this computed once.
    pub fn indices_at(
        &self,
        scheme: &EncodingScheme,
        location: LocationId,
        m: usize,
    ) -> Vec<usize> {
        self.vehicles
            .iter()
            .map(|v| scheme.encode_index(v, location, m))
            .collect()
    }

    /// Encodes the whole fleet into a record (convenience for small runs).
    pub fn encode_into(&self, scheme: &EncodingScheme, record: &mut TrafficRecord) {
        for v in &self.vehicles {
            record.encode(scheme, v);
        }
    }
}

/// Sets `count` uniformly random bits in the record — the statistical
/// shortcut for transient vehicles (see the module docs). Duplicate draws
/// collapse exactly like hash collisions between distinct vehicles do.
pub fn fill_transients<R: Rng + ?Sized>(record: &mut TrafficRecord, count: u64, rng: &mut R) {
    let m = record.len();
    for _ in 0..count {
        record.set_reported_index(rng.gen_range(0..m));
    }
}

/// The exact transient procedure: generate fresh secrets per vehicle and
/// run the full encoding chain. Used by validation tests and the
/// event-driven simulator; `fill_transients` is its fast equivalent.
pub fn fill_transients_exact<R: Rng + ?Sized>(
    record: &mut TrafficRecord,
    scheme: &EncodingScheme,
    count: u64,
    rng: &mut R,
) {
    for _ in 0..count {
        let v = VehicleSecrets::generate(rng, scheme.num_representatives());
        record.encode(scheme, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sioux_falls;
    use ptm_core::params::BitmapSize;
    use ptm_core::record::PeriodId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn synthetic_point_volumes_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let sc = PointScenario::synthetic(&mut rng, 10, 0.25);
            assert_eq!(sc.num_periods(), 10);
            for &v in &sc.volumes {
                assert!(v > 2000 && v <= 10_000, "volume {v} out of range");
            }
            let expected = (0.25 * sc.n_min() as f64).round() as u64;
            assert_eq!(sc.persistent, expected);
        }
    }

    #[test]
    fn synthetic_p2p_persistent_bounded_by_min() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let sc = P2pScenario::synthetic(&mut rng, 5, 0.5);
            let min_all = sc
                .volumes_l
                .iter()
                .chain(sc.volumes_lp.iter())
                .min()
                .copied()
                .expect("non-empty");
            assert!(sc.persistent <= min_all);
            for p in 0..5 {
                // transient counts never underflow
                let _ = sc.transients_l(p);
                let _ = sc.transients_lp(p);
            }
        }
    }

    #[test]
    fn trip_table_scenario_matches_table_one_row() {
        let table = sioux_falls::paper_trip_table();
        let sc = P2pScenario::from_trip_table(&table, NodeId::new(14), NodeId::new(9), 5);
        assert_eq!(sc.volumes_l, vec![213_000; 5]);
        assert_eq!(sc.volumes_lp, vec![451_000; 5]);
        assert_eq!(sc.persistent, 40_000);
        assert_eq!(sc.transients_l(0), 173_000);
        assert_eq!(sc.transients_lp(0), 411_000);
    }

    #[test]
    fn fraction_zero_and_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sc0 = PointScenario::synthetic(&mut rng, 4, 0.0);
        assert_eq!(sc0.persistent, 0);
        let sc1 = PointScenario::synthetic(&mut rng, 4, 1.0);
        assert_eq!(sc1.persistent, sc1.n_min());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_fraction_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = PointScenario::synthetic(&mut rng, 4, 1.5);
    }

    #[test]
    fn common_fleet_same_indices_every_period() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let scheme = EncodingScheme::new(77, 3);
        let fleet = CommonFleet::generate(&mut rng, 100, 3);
        assert_eq!(fleet.len(), 100);
        let loc = LocationId::new(3);
        let idx = fleet.indices_at(&scheme, loc, 1024);
        // Encoding into two different-period records sets exactly those bits.
        for period in 0..2u32 {
            let mut record = TrafficRecord::new(
                loc,
                PeriodId::new(period),
                BitmapSize::new(1024).expect("pow2"),
            );
            fleet.encode_into(&scheme, &mut record);
            let mut expected: Vec<usize> = idx.clone();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(record.bitmap().iter_ones().collect::<Vec<_>>(), expected);
        }
    }

    #[test]
    fn transient_shortcut_statistically_matches_exact() {
        let scheme = EncodingScheme::new(88, 3);
        let m = BitmapSize::new(4096).expect("pow2");
        let loc = LocationId::new(1);
        let runs = 30;
        let count = 2_000u64;
        let mut ones_fast = 0usize;
        let mut ones_exact = 0usize;
        for run in 0..runs {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + run);
            let mut fast = TrafficRecord::new(loc, PeriodId::new(0), m);
            fill_transients(&mut fast, count, &mut rng);
            ones_fast += fast.bitmap().count_ones();

            let mut rng = ChaCha8Rng::seed_from_u64(2000 + run);
            let mut exact = TrafficRecord::new(loc, PeriodId::new(0), m);
            fill_transients_exact(&mut exact, &scheme, count, &mut rng);
            ones_exact += exact.bitmap().count_ones();
        }
        let mean_fast = ones_fast as f64 / runs as f64;
        let mean_exact = ones_exact as f64 / runs as f64;
        let rel = (mean_fast - mean_exact).abs() / mean_exact;
        assert!(
            rel < 0.01,
            "shortcut mean {mean_fast} vs exact mean {mean_exact} (rel {rel})"
        );
    }

    #[test]
    fn empty_fleet() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let fleet = CommonFleet::generate(&mut rng, 0, 3);
        assert!(fleet.is_empty());
        assert!(fleet.vehicles().is_empty());
    }
}
