//! Ground-truth bookkeeping for trace-driven experiments.
//!
//! The sketch-based estimators never see identities; the *simulator* does,
//! and uses this log to compute the exact persistent-traffic volumes the
//! estimates are compared against.

use ptm_core::encoding::{LocationId, VehicleId};
use ptm_core::record::PeriodId;
use std::collections::{HashMap, HashSet};

/// Which vehicles were present at which `(location, period)` cells.
#[derive(Debug, Clone, Default)]
pub struct PresenceLog {
    cells: HashMap<(LocationId, PeriodId), HashSet<VehicleId>>,
}

impl PresenceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `vehicle` passed `location` during `period`.
    pub fn record(&mut self, location: LocationId, period: PeriodId, vehicle: VehicleId) {
        self.cells
            .entry((location, period))
            .or_default()
            .insert(vehicle);
    }

    /// Vehicles present at a cell (empty set if none recorded).
    pub fn present(&self, location: LocationId, period: PeriodId) -> usize {
        self.cells.get(&(location, period)).map_or(0, HashSet::len)
    }

    /// Exact point persistent traffic: vehicles present at `location` in
    /// **every** listed period (paper Sec. II-A).
    ///
    /// Returns 0 when `periods` is empty.
    pub fn point_persistent(&self, location: LocationId, periods: &[PeriodId]) -> usize {
        self.intersection_size(periods.iter().map(|&p| (location, p)))
    }

    /// Exact point-to-point persistent traffic: vehicles present at **both**
    /// locations in every listed period.
    pub fn p2p_persistent(
        &self,
        location_a: LocationId,
        location_b: LocationId,
        periods: &[PeriodId],
    ) -> usize {
        self.intersection_size(
            periods
                .iter()
                .flat_map(|&p| [(location_a, p), (location_b, p)]),
        )
    }

    fn intersection_size(&self, cells: impl Iterator<Item = (LocationId, PeriodId)>) -> usize {
        let mut result: Option<HashSet<VehicleId>> = None;
        for key in cells {
            let set = match self.cells.get(&key) {
                Some(set) => set,
                None => return 0,
            };
            result = Some(match result {
                None => set.clone(),
                Some(acc) => acc.intersection(set).copied().collect(),
            });
            if result.as_ref().is_some_and(HashSet::is_empty) {
                return 0;
            }
        }
        result.map_or(0, |set| set.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: u64) -> VehicleId {
        VehicleId::new(i)
    }

    fn loc(i: u64) -> LocationId {
        LocationId::new(i)
    }

    fn per(i: u32) -> PeriodId {
        PeriodId::new(i)
    }

    #[test]
    fn point_persistent_counts_intersection() {
        let mut log = PresenceLog::new();
        // v1 present all 3 periods, v2 in two, v3 in one.
        for p in 0..3 {
            log.record(loc(1), per(p), vid(1));
        }
        log.record(loc(1), per(0), vid(2));
        log.record(loc(1), per(1), vid(2));
        log.record(loc(1), per(2), vid(3));
        let periods = [per(0), per(1), per(2)];
        assert_eq!(log.point_persistent(loc(1), &periods), 1);
        assert_eq!(log.point_persistent(loc(1), &periods[..2]), 2);
    }

    #[test]
    fn empty_period_list_is_zero() {
        let mut log = PresenceLog::new();
        log.record(loc(1), per(0), vid(1));
        assert_eq!(log.point_persistent(loc(1), &[]), 0);
    }

    #[test]
    fn missing_cell_is_zero() {
        let mut log = PresenceLog::new();
        log.record(loc(1), per(0), vid(1));
        assert_eq!(log.point_persistent(loc(1), &[per(0), per(1)]), 0);
        assert_eq!(log.point_persistent(loc(9), &[per(0)]), 0);
    }

    #[test]
    fn p2p_persistent_requires_both_locations() {
        let mut log = PresenceLog::new();
        let periods = [per(0), per(1)];
        // v1: both locations both periods; v2: only location 1.
        for &p in &periods {
            log.record(loc(1), p, vid(1));
            log.record(loc(2), p, vid(1));
            log.record(loc(1), p, vid(2));
        }
        assert_eq!(log.p2p_persistent(loc(1), loc(2), &periods), 1);
        assert_eq!(log.point_persistent(loc(1), &periods), 2);
    }

    #[test]
    fn duplicate_records_are_idempotent() {
        let mut log = PresenceLog::new();
        log.record(loc(1), per(0), vid(7));
        log.record(loc(1), per(0), vid(7));
        assert_eq!(log.present(loc(1), per(0)), 1);
    }

    #[test]
    fn present_counts_cell_size() {
        let mut log = PresenceLog::new();
        for i in 0..5 {
            log.record(loc(3), per(2), vid(i));
        }
        assert_eq!(log.present(loc(3), per(2)), 5);
        assert_eq!(log.present(loc(3), per(1)), 0);
    }
}
