//! The Sioux Falls test network and trip table (LeBlanc, Morlok &
//! Pierskalla 1975) — the real-world workload of the paper's Sec. VI-A.
//!
//! The network has 24 nodes and 76 directed links; the classic daily trip
//! table totals 360,600 vehicles. The paper's per-location volumes
//! (`n' = 451,000` at the busiest node) correspond to this table scaled by
//! a factor of 5, exposed here as [`paper_trip_table`].
//!
//! Data transcribed from the public Transportation Networks test-problem
//! distribution; free-flow times are in minutes. The reproduced experiments
//! never depend on individual link times (only the event-driven demo routes
//! over them) — the estimator experiments consume only the per-location
//! trip volumes.

use crate::network::{NodeId, RoadNetwork};
use crate::triptable::TripTable;

/// Number of nodes in the Sioux Falls network.
pub const NUM_NODES: usize = 24;

/// The 38 undirected road segments `(a, b, free-flow minutes)`, 1-based
/// node labels as in the literature. Each becomes two directed links.
pub const SEGMENTS: [(usize, usize, f64); 38] = [
    (1, 2, 6.0),
    (1, 3, 4.0),
    (2, 6, 5.0),
    (3, 4, 4.0),
    (3, 12, 4.0),
    (4, 5, 2.0),
    (4, 11, 6.0),
    (5, 6, 4.0),
    (5, 9, 5.0),
    (6, 8, 2.0),
    (7, 8, 3.0),
    (7, 18, 2.0),
    (8, 9, 10.0),
    (8, 16, 5.0),
    (9, 10, 3.0),
    (10, 11, 5.0),
    (10, 15, 6.0),
    (10, 16, 4.0),
    (10, 17, 8.0),
    (11, 12, 6.0),
    (11, 14, 4.0),
    (12, 13, 3.0),
    (13, 24, 4.0),
    (14, 15, 5.0),
    (14, 23, 4.0),
    (15, 19, 3.0),
    (15, 22, 3.0),
    (16, 17, 2.0),
    (16, 18, 3.0),
    (17, 19, 2.0),
    (18, 20, 4.0),
    (19, 20, 4.0),
    (20, 21, 6.0),
    (20, 22, 5.0),
    (21, 22, 2.0),
    (21, 24, 3.0),
    (22, 23, 4.0),
    (23, 24, 2.0),
];

/// The daily origin–destination trips, row-major, 24×24.
#[rustfmt::skip]
const TRIPS: [u64; NUM_NODES * NUM_NODES] = [
    // row 1
    0,100,100,500,200,300,500,800,500,1300,500,200,500,300,500,500,400,100,300,300,100,400,300,100,
    // row 2
    100,0,100,200,100,400,200,400,200,600,200,100,300,100,100,400,200,0,100,100,0,100,0,0,
    // row 3
    100,100,0,200,100,300,100,200,100,300,300,200,100,100,100,200,100,0,0,0,0,100,100,0,
    // row 4
    500,200,200,0,500,400,400,700,700,1200,1500,600,600,500,500,800,500,100,200,300,200,400,500,200,
    // row 5
    200,100,100,500,0,200,200,500,800,1000,500,200,200,100,200,500,200,0,100,100,100,200,100,0,
    // row 6
    300,400,300,400,200,0,400,800,400,800,400,200,200,100,200,900,500,100,200,300,100,200,100,100,
    // row 7
    500,200,100,400,200,400,0,1000,600,1900,500,700,400,200,500,1400,1000,200,400,500,200,500,200,100,
    // row 8
    800,400,200,700,500,800,1000,0,800,1600,800,600,600,400,600,2200,1400,300,700,900,400,500,300,200,
    // row 9
    500,200,100,700,800,400,600,800,0,2800,1400,600,600,600,900,1400,900,200,400,600,300,700,500,200,
    // row 10
    1300,600,300,1200,1000,800,1900,1600,2800,0,3900,2000,1900,2100,4000,4400,3900,700,1800,2500,1200,2600,1800,800,
    // row 11
    500,200,300,1500,500,400,500,800,1400,3900,0,1400,1000,1600,1400,1400,1000,100,400,600,400,1100,1300,600,
    // row 12
    200,100,200,600,200,200,700,600,600,2000,1400,0,1300,700,700,700,600,200,300,500,300,700,700,500,
    // row 13
    500,300,100,600,200,200,400,600,600,1900,1000,1300,0,600,700,600,500,100,300,600,600,1300,800,800,
    // row 14
    300,100,100,500,100,100,200,400,600,2100,1600,700,600,0,1300,700,700,100,300,500,400,1200,1100,400,
    // row 15
    500,100,100,500,200,200,500,600,900,4000,1400,700,700,1300,0,1200,1500,200,800,1100,800,2600,1000,400,
    // row 16
    500,400,200,800,500,900,1400,2200,1400,4400,1400,700,600,700,1200,0,2800,500,1300,1600,600,1200,500,300,
    // row 17
    400,200,100,500,200,500,1000,1400,900,3900,1000,600,500,700,1500,2800,0,600,1700,1700,600,1700,600,300,
    // row 18
    100,0,0,100,0,100,200,300,200,700,100,200,100,100,200,500,600,0,300,400,100,300,100,0,
    // row 19
    300,100,0,200,100,200,400,700,400,1800,400,300,300,300,800,1300,1700,300,0,1200,400,1200,300,100,
    // row 20
    300,100,0,300,100,300,500,900,600,2500,600,500,600,500,1100,1600,1700,400,1200,0,1200,2400,700,400,
    // row 21
    100,0,0,200,100,100,200,400,300,1200,400,300,600,400,800,600,600,100,400,1200,0,1800,700,500,
    // row 22
    400,100,100,400,200,200,500,500,700,2600,1100,700,1300,1200,2600,1200,1700,300,1200,2400,1800,0,2100,1100,
    // row 23
    300,0,100,500,100,100,200,300,500,1800,1300,700,800,1100,1000,500,600,100,300,700,700,2100,0,700,
    // row 24
    100,0,0,200,0,100,100,200,200,800,600,500,800,400,400,300,300,0,100,400,500,1100,700,0,
];

/// Builds the Sioux Falls road network (76 directed links).
pub fn road_network() -> RoadNetwork {
    let mut net = RoadNetwork::new(NUM_NODES);
    for &(a, b, time) in SEGMENTS.iter() {
        net.add_bidirectional(NodeId::new(a - 1), NodeId::new(b - 1), time);
    }
    net
}

/// The raw daily trip table (total 360,600 trips).
pub fn trip_table() -> TripTable {
    TripTable::from_matrix(NUM_NODES, TRIPS.to_vec())
}

/// The trip table at the paper's scale: every entry multiplied by 5, so the
/// busiest node carries `n' = 451,000` involving trips as reported with
/// Table I.
pub fn paper_trip_table() -> TripTable {
    trip_table().scaled(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_shape() {
        let net = road_network();
        assert_eq!(net.num_nodes(), 24);
        assert_eq!(net.num_links(), 76);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn table_total_is_canonical() {
        assert_eq!(trip_table().total(), 360_600);
    }

    #[test]
    fn table_is_symmetric() {
        let t = trip_table();
        for a in 0..NUM_NODES {
            for b in 0..NUM_NODES {
                let ab = t.demand(NodeId::new(a), NodeId::new(b));
                let ba = t.demand(NodeId::new(b), NodeId::new(a));
                assert_eq!(
                    ab,
                    ba,
                    "({},{}) = {} vs ({},{}) = {}",
                    a + 1,
                    b + 1,
                    ab,
                    b + 1,
                    a + 1,
                    ba
                );
            }
        }
    }

    /// The paper's Table I fully decodes against this table: its "8 randomly
    /// selected locations" are nodes 15, 12, 7, 24, 6, 18, 2 and 3 (1-based),
    /// with L' = node 10, at scale factor 5. Both the per-location volumes n
    /// and the common-vehicle counts n'' = 5 x pair volume match exactly.
    #[test]
    fn table_one_mapping_is_exact() {
        let t = paper_trip_table();
        let l_prime = NodeId::new(9);
        let rows: [(usize, u64, u64); 8] = [
            (15, 213_000, 40_000),
            (12, 140_000, 20_000),
            (7, 121_000, 19_000),
            (24, 78_000, 8_000),
            (6, 76_000, 8_000),
            (18, 47_000, 7_000),
            (2, 40_000, 6_000),
            (3, 28_000, 3_000),
        ];
        for (node_1based, n, n_common) in rows {
            let node = NodeId::new(node_1based - 1);
            assert_eq!(t.involving_volume(node), n, "n at node {node_1based}");
            assert_eq!(
                t.pair_volume(node, l_prime),
                n_common,
                "n'' at node {node_1based}"
            );
        }
    }

    #[test]
    fn busiest_node_matches_paper_l_prime() {
        // Node 10 is the paper's L' with n' = 451,000 at scale 5.
        let t = paper_trip_table();
        let busiest = t.busiest_node();
        assert_eq!(busiest, NodeId::new(9));
        assert_eq!(t.involving_volume(busiest), 451_000);
    }

    #[test]
    fn node_15_matches_table_one_location_1() {
        // The largest of the paper's 8 selected locations has n = 213,000,
        // which is node 15's involving volume at scale 5.
        let t = paper_trip_table();
        assert_eq!(t.involving_volume(NodeId::new(14)), 213_000);
    }

    #[test]
    fn all_routes_exist() {
        let net = road_network();
        for a in 0..NUM_NODES {
            for b in 0..NUM_NODES {
                if a != b {
                    assert!(
                        net.shortest_path(NodeId::new(a), NodeId::new(b)).is_some(),
                        "no route {} -> {}",
                        a + 1,
                        b + 1
                    );
                }
            }
        }
    }

    #[test]
    fn paths_respect_triangle_inequality_over_segments() {
        // A shortest path is never longer than any direct segment.
        let net = road_network();
        for &(a, b, time) in SEGMENTS.iter() {
            let path = net
                .shortest_path(NodeId::new(a - 1), NodeId::new(b - 1))
                .expect("connected");
            assert!(path.travel_time <= time + 1e-9);
        }
    }
}
