//! Origin–destination trip tables: daily vehicle demand between node pairs.

use crate::network::NodeId;
use serde::{Deserialize, Serialize};

/// A square origin–destination matrix of daily trips.
///
/// `demand(o, d)` is the number of vehicles travelling from `o` to `d` per
/// measurement period. The paper derives per-location traffic volumes from
/// such a table: the volume at location `L` is "the sum of all entries in
/// the trip table involving `L`" (Sec. VI-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripTable {
    n: usize,
    /// Row-major demand matrix, `trips[o * n + d]`.
    trips: Vec<u64>,
}

impl TripTable {
    /// Builds a table from a row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if `trips.len() != n * n` or any diagonal entry is nonzero
    /// (self-trips never pass between two distinct locations).
    pub fn from_matrix(n: usize, trips: Vec<u64>) -> Self {
        assert_eq!(trips.len(), n * n, "matrix must be n x n");
        for i in 0..n {
            assert_eq!(trips[i * n + i], 0, "diagonal entry {i} must be zero");
        }
        Self { n, trips }
    }

    /// Number of zones (nodes).
    pub fn num_zones(&self) -> usize {
        self.n
    }

    /// Demand from `origin` to `destination`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn demand(&self, origin: NodeId, destination: NodeId) -> u64 {
        assert!(
            origin.index() < self.n && destination.index() < self.n,
            "node out of range"
        );
        self.trips[origin.index() * self.n + destination.index()]
    }

    /// Total trips in the table.
    pub fn total(&self) -> u64 {
        self.trips.iter().sum()
    }

    /// Trips originating at `node` (row sum).
    pub fn origin_volume(&self, node: NodeId) -> u64 {
        let i = node.index();
        (0..self.n).map(|d| self.trips[i * self.n + d]).sum()
    }

    /// Trips ending at `node` (column sum).
    pub fn destination_volume(&self, node: NodeId) -> u64 {
        let i = node.index();
        (0..self.n).map(|o| self.trips[o * self.n + i]).sum()
    }

    /// The paper's per-location volume: all trips involving the node
    /// (row sum + column sum).
    pub fn involving_volume(&self, node: NodeId) -> u64 {
        self.origin_volume(node) + self.destination_volume(node)
    }

    /// Demand between a pair in both directions,
    /// `demand(a, b) + demand(b, a)`.
    pub fn pair_volume(&self, a: NodeId, b: NodeId) -> u64 {
        self.demand(a, b) + self.demand(b, a)
    }

    /// The node with the largest involving volume (the paper's `L'`).
    ///
    /// # Panics
    ///
    /// Panics on an empty table.
    pub fn busiest_node(&self) -> NodeId {
        assert!(self.n > 0, "empty table");
        (0..self.n)
            .map(NodeId::new)
            .max_by_key(|&node| self.involving_volume(node))
            .expect("non-empty")
    }

    /// Returns a copy with every entry multiplied by `factor`.
    ///
    /// The paper's Table I volumes correspond to the public Sioux Falls
    /// table scaled by 5 (`n' = 451,000` at the busiest node vs `~90,200`
    /// involving trips in the raw table).
    pub fn scaled(&self, factor: u64) -> TripTable {
        TripTable {
            n: self.n,
            trips: self.trips.iter().map(|&t| t * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TripTable {
        // 3 zones: 0->1: 10, 0->2: 20, 1->0: 5, 1->2: 15, 2->0: 1, 2->1: 2.
        TripTable::from_matrix(3, vec![0, 10, 20, 5, 0, 15, 1, 2, 0])
    }

    #[test]
    fn demand_lookup() {
        let t = small();
        assert_eq!(t.demand(NodeId::new(0), NodeId::new(1)), 10);
        assert_eq!(t.demand(NodeId::new(2), NodeId::new(0)), 1);
    }

    #[test]
    fn volumes() {
        let t = small();
        assert_eq!(t.total(), 53);
        assert_eq!(t.origin_volume(NodeId::new(0)), 30);
        assert_eq!(t.destination_volume(NodeId::new(0)), 6);
        assert_eq!(t.involving_volume(NodeId::new(0)), 36);
        assert_eq!(t.pair_volume(NodeId::new(0), NodeId::new(1)), 15);
    }

    #[test]
    fn busiest() {
        let t = small();
        // involving: node0 = 36, node1 = 32, node2 = 38.
        assert_eq!(t.busiest_node(), NodeId::new(2));
    }

    #[test]
    fn scaling() {
        let t = small().scaled(5);
        assert_eq!(t.total(), 265);
        assert_eq!(t.demand(NodeId::new(0), NodeId::new(2)), 100);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn nonzero_diagonal_rejected() {
        let _ = TripTable::from_matrix(2, vec![1, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "n x n")]
    fn wrong_shape_rejected() {
        let _ = TripTable::from_matrix(2, vec![0, 1, 2]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = small();
        let json = serde_json::to_string(&t).expect("serialize");
        let back: TripTable = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, t);
    }
}
