//! Measurement-period calendars.
//!
//! The paper's queries are calendar-shaped: "records from Monday through
//! Friday of a certain week, records from Mondays of three consecutive
//! weeks, or several records of interest based on any other criterion"
//! (Sec. II-A). This module maps calendar days to [`PeriodId`]s and builds
//! those selections.

use ptm_core::record::PeriodId;
use serde::{Deserialize, Serialize};

/// Day of week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday.
    Saturday,
    /// Sunday.
    Sunday,
}

impl Weekday {
    /// All seven days, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Zero-based offset from Monday.
    pub fn offset(&self) -> u32 {
        match self {
            Weekday::Monday => 0,
            Weekday::Tuesday => 1,
            Weekday::Wednesday => 2,
            Weekday::Thursday => 3,
            Weekday::Friday => 4,
            Weekday::Saturday => 5,
            Weekday::Sunday => 6,
        }
    }

    /// Whether this is a Monday–Friday workday.
    pub fn is_workday(&self) -> bool {
        !matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// A daily measurement calendar: period 0 is day 0 of the campaign, with a
/// configurable starting weekday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Calendar {
    starts_on: Weekday,
    num_days: u32,
}

impl Calendar {
    /// A measurement campaign of `num_days` daily periods starting on
    /// `starts_on`.
    ///
    /// # Panics
    ///
    /// Panics if `num_days` is zero.
    pub fn new(starts_on: Weekday, num_days: u32) -> Self {
        assert!(num_days >= 1, "a campaign needs at least one day");
        Self {
            starts_on,
            num_days,
        }
    }

    /// Campaign length in days.
    pub fn num_days(&self) -> u32 {
        self.num_days
    }

    /// The weekday of a given period.
    ///
    /// # Panics
    ///
    /// Panics if the period lies outside the campaign.
    pub fn weekday_of(&self, period: PeriodId) -> Weekday {
        assert!(period.get() < self.num_days, "period beyond the campaign");
        Weekday::ALL[((self.starts_on.offset() + period.get()) % 7) as usize]
    }

    /// Periods falling on the given weekday (e.g. "Mondays of three
    /// consecutive weeks" = the first three entries for Monday).
    pub fn periods_on(&self, weekday: Weekday) -> Vec<PeriodId> {
        (0..self.num_days)
            .map(PeriodId::new)
            .filter(|&p| self.weekday_of(p) == weekday)
            .collect()
    }

    /// Workday (Mon–Fri) periods of the `week_index`-th campaign week.
    pub fn workdays_of_week(&self, week_index: u32) -> Vec<PeriodId> {
        (0..self.num_days)
            .map(PeriodId::new)
            .filter(|&p| {
                let day = self.starts_on.offset() + p.get();
                day / 7 == week_index && self.weekday_of(p).is_workday()
            })
            .collect()
    }

    /// All periods of the campaign.
    pub fn all_periods(&self) -> Vec<PeriodId> {
        (0..self.num_days).map(PeriodId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekday_progression_wraps() {
        let cal = Calendar::new(Weekday::Friday, 10);
        assert_eq!(cal.weekday_of(PeriodId::new(0)), Weekday::Friday);
        assert_eq!(cal.weekday_of(PeriodId::new(1)), Weekday::Saturday);
        assert_eq!(cal.weekday_of(PeriodId::new(2)), Weekday::Sunday);
        assert_eq!(cal.weekday_of(PeriodId::new(3)), Weekday::Monday);
        assert_eq!(cal.weekday_of(PeriodId::new(9)), Weekday::Sunday);
    }

    #[test]
    fn mondays_of_three_consecutive_weeks() {
        // The paper's example query: a 21-day campaign starting Monday has
        // Mondays at periods 0, 7, 14.
        let cal = Calendar::new(Weekday::Monday, 21);
        assert_eq!(
            cal.periods_on(Weekday::Monday),
            vec![PeriodId::new(0), PeriodId::new(7), PeriodId::new(14)]
        );
    }

    #[test]
    fn monday_through_friday_of_a_week() {
        let cal = Calendar::new(Weekday::Monday, 14);
        assert_eq!(
            cal.workdays_of_week(0),
            (0..5).map(PeriodId::new).collect::<Vec<_>>()
        );
        assert_eq!(
            cal.workdays_of_week(1),
            (7..12).map(PeriodId::new).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mid_week_start_workdays() {
        // Starting Wednesday: week 0 holds Wed, Thu, Fri (periods 0..3).
        let cal = Calendar::new(Weekday::Wednesday, 14);
        assert_eq!(
            cal.workdays_of_week(0),
            vec![PeriodId::new(0), PeriodId::new(1), PeriodId::new(2)]
        );
        // Week 1 starts at period 5 (Monday) and holds 5 workdays.
        assert_eq!(cal.workdays_of_week(1).len(), 5);
        assert_eq!(cal.workdays_of_week(1)[0], PeriodId::new(5));
    }

    #[test]
    fn weekend_detection() {
        assert!(!Weekday::Saturday.is_workday());
        assert!(!Weekday::Sunday.is_workday());
        assert!(Weekday::ALL.iter().filter(|d| d.is_workday()).count() == 5);
    }

    #[test]
    fn all_periods_covers_campaign() {
        let cal = Calendar::new(Weekday::Sunday, 3);
        assert_eq!(cal.all_periods().len(), 3);
        assert_eq!(cal.num_days(), 3);
    }

    #[test]
    #[should_panic(expected = "beyond the campaign")]
    fn out_of_campaign_period_panics() {
        let cal = Calendar::new(Weekday::Monday, 5);
        let _ = cal.weekday_of(PeriodId::new(5));
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn empty_campaign_panics() {
        let _ = Calendar::new(Weekday::Monday, 0);
    }
}
