//! Trip sampling and route-aware trace generation.
//!
//! The trip table gives origin–destination demand; this module samples
//! individual trips proportionally to that demand and routes them over the
//! road network, producing the sequence of RSU locations each vehicle
//! passes. This is what feeds the event-driven simulator with *realistic*
//! correlated passes: a vehicle driving 15 → 10 also crosses every
//! intermediate intersection on the shortest path.

use crate::network::{NodeId, Path, RoadNetwork};
use crate::triptable::TripTable;
use rand::Rng;

/// A routed trip: the OD pair and the node sequence travelled.
#[derive(Debug, Clone, PartialEq)]
pub struct Trip {
    /// Origin node.
    pub origin: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// Every node passed, origin first, destination last.
    pub nodes: Vec<NodeId>,
    /// Cumulative arrival offset (minutes of free-flow time) at each node.
    pub arrival_minutes: Vec<f64>,
}

/// Samples OD pairs proportionally to trip-table demand.
#[derive(Debug, Clone)]
pub struct TripSampler {
    /// Flattened `(origin, destination)` pairs with nonzero demand.
    pairs: Vec<(NodeId, NodeId)>,
    /// Cumulative demand, aligned with `pairs`.
    cumulative: Vec<u64>,
    total: u64,
}

impl TripSampler {
    /// Builds a sampler from a trip table.
    ///
    /// # Panics
    ///
    /// Panics if the table has zero total demand.
    pub fn new(table: &TripTable) -> Self {
        let n = table.num_zones();
        let mut pairs = Vec::new();
        let mut cumulative = Vec::new();
        let mut total = 0u64;
        for o in 0..n {
            for d in 0..n {
                let demand = table.demand(NodeId::new(o), NodeId::new(d));
                if demand > 0 {
                    total += demand;
                    pairs.push((NodeId::new(o), NodeId::new(d)));
                    cumulative.push(total);
                }
            }
        }
        assert!(total > 0, "trip table has no demand");
        Self {
            pairs,
            cumulative,
            total,
        }
    }

    /// Total demand across all pairs.
    pub fn total_demand(&self) -> u64 {
        self.total
    }

    /// Samples one OD pair with probability proportional to its demand.
    pub fn sample_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, NodeId) {
        let ticket = rng.gen_range(0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= ticket);
        self.pairs[idx]
    }

    /// Samples a routed trip; `None` if the sampled pair is disconnected
    /// (cannot happen on Sioux Falls, which is strongly connected).
    pub fn sample_trip<R: Rng + ?Sized>(&self, network: &RoadNetwork, rng: &mut R) -> Option<Trip> {
        let (origin, destination) = self.sample_pair(rng);
        let path = network.shortest_path(origin, destination)?;
        Some(Trip::from_path(origin, destination, &path, network))
    }
}

impl Trip {
    fn from_path(origin: NodeId, destination: NodeId, path: &Path, network: &RoadNetwork) -> Self {
        let mut arrival_minutes = Vec::with_capacity(path.nodes.len());
        let mut elapsed = 0.0;
        arrival_minutes.push(0.0);
        for window in path.nodes.windows(2) {
            let (from, to) = (window[0], window[1]);
            let link = network
                .links_from(from)
                .iter()
                .filter(|l| l.to == to)
                .map(|l| l.travel_time)
                .fold(f64::INFINITY, f64::min);
            elapsed += link;
            arrival_minutes.push(elapsed);
        }
        Self {
            origin,
            destination,
            nodes: path.nodes.clone(),
            arrival_minutes,
        }
    }

    /// Whether the trip passes through `node` (including endpoints).
    pub fn passes(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Free-flow duration of the whole trip in minutes.
    pub fn duration_minutes(&self) -> f64 {
        *self
            .arrival_minutes
            .last()
            .expect("trips have at least one node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sioux_falls;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sampling_respects_demand_proportions() {
        let table = sioux_falls::trip_table();
        let sampler = TripSampler::new(&table);
        assert_eq!(sampler.total_demand(), 360_600);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // (10, 16) carries demand 4400/360600 ≈ 1.22%; count its frequency.
        let trials = 50_000;
        let hits = (0..trials)
            .filter(|_| sampler.sample_pair(&mut rng) == (NodeId::new(9), NodeId::new(15)))
            .count();
        let rate = hits as f64 / trials as f64;
        let expected = 4400.0 / 360_600.0;
        assert!(
            (rate - expected).abs() < 0.004,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn zero_demand_pairs_never_sampled() {
        let table = sioux_falls::trip_table();
        let sampler = TripSampler::new(&table);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20_000 {
            let (o, d) = sampler.sample_pair(&mut rng);
            assert!(
                table.demand(o, d) > 0,
                "sampled zero-demand pair {o} -> {d}"
            );
            assert_ne!(o, d, "diagonal is zero demand");
        }
    }

    #[test]
    fn routed_trip_has_consistent_arrivals() {
        let table = sioux_falls::trip_table();
        let network = sioux_falls::road_network();
        let sampler = TripSampler::new(&table);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let trip = sampler.sample_trip(&network, &mut rng).expect("connected");
            assert_eq!(trip.nodes.len(), trip.arrival_minutes.len());
            assert_eq!(trip.nodes.first(), Some(&trip.origin));
            assert_eq!(trip.nodes.last(), Some(&trip.destination));
            assert_eq!(trip.arrival_minutes[0], 0.0);
            for w in trip.arrival_minutes.windows(2) {
                assert!(w[1] > w[0], "arrival times must increase");
            }
            assert!(trip.passes(trip.origin) && trip.passes(trip.destination));
            // Shortest-path duration matches the last arrival.
            let direct = network
                .shortest_path(trip.origin, trip.destination)
                .expect("connected")
                .travel_time;
            assert!((trip.duration_minutes() - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn intermediate_nodes_are_passed() {
        // Node 1 to node 20 must cross intermediate intersections.
        let network = sioux_falls::road_network();
        let path = network
            .shortest_path(NodeId::new(0), NodeId::new(19))
            .expect("connected");
        assert!(path.nodes.len() > 2, "1 -> 20 is not adjacent");
    }

    #[test]
    #[should_panic(expected = "no demand")]
    fn empty_table_rejected() {
        let table = TripTable::from_matrix(2, vec![0, 0, 0, 0]);
        let _ = TripSampler::new(&table);
    }
}
