//! A directed road network graph with shortest-path routing.
//!
//! RSUs sit at network nodes ("locations of interest, such as street
//! intersections", paper Sec. II-A); trips route between nodes along
//! shortest free-flow-time paths, which determines which RSUs a vehicle
//! passes in the event-driven simulation.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A node (intersection) in the road network. Indices are zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps a zero-based node index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The zero-based index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Display 1-based, matching the transportation literature.
        write!(f, "{}", self.0 + 1)
    }
}

/// A directed road link with a free-flow travel time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Head node.
    pub to: NodeId,
    /// Free-flow travel time in minutes.
    pub travel_time: f64,
}

/// A directed road network.
///
/// # Example
///
/// ```
/// use ptm_traffic::network::{NodeId, RoadNetwork};
///
/// let mut net = RoadNetwork::new(3);
/// net.add_bidirectional(NodeId::new(0), NodeId::new(1), 4.0);
/// net.add_bidirectional(NodeId::new(1), NodeId::new(2), 3.0);
/// let path = net.shortest_path(NodeId::new(0), NodeId::new(2)).expect("connected");
/// assert_eq!(path.nodes.len(), 3);
/// assert_eq!(path.travel_time, 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadNetwork {
    adjacency: Vec<Vec<Link>>,
}

/// A routed path: the node sequence and its total travel time.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes visited, origin first, destination last.
    pub nodes: Vec<NodeId>,
    /// Total free-flow travel time in minutes.
    pub travel_time: f64,
}

impl RoadNetwork {
    /// Creates a network with `num_nodes` isolated nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); num_nodes],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Adds a directed link.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or the travel time is not
    /// positive and finite.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, travel_time: f64) {
        assert!(from.index() < self.num_nodes(), "from node out of range");
        assert!(to.index() < self.num_nodes(), "to node out of range");
        assert!(
            travel_time.is_finite() && travel_time > 0.0,
            "travel time must be positive"
        );
        self.adjacency[from.index()].push(Link { to, travel_time });
    }

    /// Adds a link in both directions with the same travel time.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RoadNetwork::add_link`].
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId, travel_time: f64) {
        self.add_link(a, b, travel_time);
        self.add_link(b, a, travel_time);
    }

    /// Outgoing links of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn links_from(&self, node: NodeId) -> &[Link] {
        &self.adjacency[node.index()]
    }

    /// Dijkstra shortest path by free-flow time; `None` if unreachable.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Path> {
        #[derive(PartialEq)]
        struct Entry {
            cost: f64,
            node: usize,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for a min-heap; costs are finite by construction.
                other.cost.partial_cmp(&self.cost).expect("finite costs")
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.num_nodes();
        if from.index() >= n || to.index() >= n {
            return None;
        }
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(Entry {
            cost: 0.0,
            node: from.index(),
        });
        while let Some(Entry { cost, node }) = heap.pop() {
            if cost > dist[node] {
                continue;
            }
            if node == to.index() {
                break;
            }
            for link in &self.adjacency[node] {
                let next = link.to.index();
                let next_cost = cost + link.travel_time;
                if next_cost < dist[next] {
                    dist[next] = next_cost;
                    prev[next] = node;
                    heap.push(Entry {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }
        if dist[to.index()].is_infinite() {
            return None;
        }
        let mut nodes = vec![to];
        let mut cursor = to.index();
        while cursor != from.index() {
            cursor = prev[cursor];
            nodes.push(NodeId::new(cursor));
        }
        nodes.reverse();
        Some(Path {
            nodes,
            travel_time: dist[to.index()],
        })
    }

    /// Whether every node can reach every other node.
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        // BFS forward and on the reverse graph from node 0.
        let forward = self.reachable_from(0, false);
        let backward = self.reachable_from(0, true);
        forward.iter().all(|&r| r) && backward.iter().all(|&r| r)
    }

    fn reachable_from(&self, start: usize, reversed: bool) -> Vec<bool> {
        let n = self.num_nodes();
        let mut reverse_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        if reversed {
            for (from, links) in self.adjacency.iter().enumerate() {
                for link in links {
                    reverse_adj[link.to.index()].push(from);
                }
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(node) = stack.pop() {
            let neighbors: Vec<usize> = if reversed {
                reverse_adj[node].clone()
            } else {
                self.adjacency[node].iter().map(|l| l.to.index()).collect()
            };
            for next in neighbors {
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> RoadNetwork {
        // 0 -> 1 -> 3 costs 5; 0 -> 2 -> 3 costs 4.
        let mut net = RoadNetwork::new(4);
        net.add_link(NodeId::new(0), NodeId::new(1), 2.0);
        net.add_link(NodeId::new(1), NodeId::new(3), 3.0);
        net.add_link(NodeId::new(0), NodeId::new(2), 1.0);
        net.add_link(NodeId::new(2), NodeId::new(3), 3.0);
        net
    }

    #[test]
    fn shortest_path_picks_cheaper_route() {
        let net = diamond();
        let path = net
            .shortest_path(NodeId::new(0), NodeId::new(3))
            .expect("path");
        assert_eq!(path.travel_time, 4.0);
        assert_eq!(
            path.nodes,
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]
        );
    }

    #[test]
    fn path_to_self_is_trivial() {
        let net = diamond();
        let path = net
            .shortest_path(NodeId::new(1), NodeId::new(1))
            .expect("path");
        assert_eq!(path.travel_time, 0.0);
        assert_eq!(path.nodes, vec![NodeId::new(1)]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut net = RoadNetwork::new(3);
        net.add_link(NodeId::new(0), NodeId::new(1), 1.0);
        assert!(net.shortest_path(NodeId::new(1), NodeId::new(2)).is_none());
        assert!(net.shortest_path(NodeId::new(2), NodeId::new(0)).is_none());
    }

    #[test]
    fn bidirectional_adds_both_directions() {
        let mut net = RoadNetwork::new(2);
        net.add_bidirectional(NodeId::new(0), NodeId::new(1), 2.5);
        assert_eq!(net.num_links(), 2);
        assert!(net.shortest_path(NodeId::new(1), NodeId::new(0)).is_some());
    }

    #[test]
    fn strongly_connected_detection() {
        let mut net = RoadNetwork::new(3);
        net.add_bidirectional(NodeId::new(0), NodeId::new(1), 1.0);
        assert!(!net.is_strongly_connected());
        net.add_bidirectional(NodeId::new(1), NodeId::new(2), 1.0);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn one_way_cycle_is_strongly_connected() {
        let mut net = RoadNetwork::new(3);
        net.add_link(NodeId::new(0), NodeId::new(1), 1.0);
        net.add_link(NodeId::new(1), NodeId::new(2), 1.0);
        net.add_link(NodeId::new(2), NodeId::new(0), 1.0);
        assert!(net.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_time_rejected() {
        let mut net = RoadNetwork::new(2);
        net.add_link(NodeId::new(0), NodeId::new(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected() {
        let mut net = RoadNetwork::new(2);
        net.add_link(NodeId::new(0), NodeId::new(5), 1.0);
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(NodeId::new(0).to_string(), "1");
        assert_eq!(NodeId::new(23).to_string(), "24");
    }

    #[test]
    fn longer_chain_path_reconstruction() {
        let mut net = RoadNetwork::new(6);
        for i in 0..5 {
            net.add_link(NodeId::new(i), NodeId::new(i + 1), 1.0);
        }
        let path = net
            .shortest_path(NodeId::new(0), NodeId::new(5))
            .expect("path");
        assert_eq!(path.nodes.len(), 6);
        assert_eq!(path.travel_time, 5.0);
        for (i, node) in path.nodes.iter().enumerate() {
            assert_eq!(node.index(), i);
        }
    }
}
