//! Aggregation statistics for experiment results.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than 2 values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// The paper's accuracy metric: `|n̂ − n| / n` (Sec. II-C).
///
/// # Panics
///
/// Panics if `actual` is not positive — relative error against a zero
/// ground truth is undefined; callers with `n = 0` should report the
/// absolute error instead.
pub fn relative_error(actual: f64, estimated: f64) -> f64 {
    assert!(actual > 0.0, "relative error needs a positive ground truth");
    (estimated - actual).abs() / actual
}

/// Linear-interpolated percentile (`p` in `[0, 100]`).
///
/// # Panics
///
/// Panics on an empty slice or out-of-range `p`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A two-sided bootstrap confidence interval for the sample mean.
///
/// Resamples the data `resamples` times with replacement (deterministic,
/// seeded) and returns the `(lo, hi)` percentile interval at the given
/// confidence level. Used to report uncertainty bands on the per-cell
/// relative errors without distributional assumptions.
///
/// # Panics
///
/// Panics on an empty sample, zero resamples, or a confidence level
/// outside `(0, 1)`.
pub fn bootstrap_mean_ci(values: &[f64], confidence: f64, resamples: u32, seed: u64) -> (f64, f64) {
    assert!(!values.is_empty(), "bootstrap over an empty sample");
    assert!(resamples >= 1, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence in (0, 1)"
    );
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let sum: f64 = (0..values.len())
            .map(|_| values[rng.gen_range(0..values.len())])
            .sum();
        means.push(sum / values.len() as f64);
    }
    let alpha = (1.0 - confidence) / 2.0;
    (
        percentile(&means, alpha * 100.0),
        percentile(&means, (1.0 - alpha) * 100.0),
    )
}

/// Five-number summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_slice(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of an empty slice");
        Self {
            count: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn relative_error_matches_paper_metric() {
        assert_eq!(relative_error(100.0, 110.0), 0.1);
        assert_eq!(relative_error(100.0, 90.0), 0.1);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive ground truth")]
    fn zero_truth_panics() {
        let _ = relative_error(0.0, 5.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn summary() {
        let s = Summary::from_slice(&[1.0, 3.0, 5.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
    }

    #[test]
    fn bootstrap_ci_brackets_true_mean() {
        // Deterministic sample around 10.0.
        let xs: Vec<f64> = (0..100)
            .map(|i| 10.0 + ((i % 7) as f64 - 3.0) * 0.5)
            .collect();
        let m = mean(&xs);
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 500, 7);
        assert!(lo <= m && m <= hi, "[{lo}, {hi}] should bracket {m}");
        assert!(
            hi - lo < 1.0,
            "interval [{lo}, {hi}] too wide for this sample"
        );
        // Higher confidence widens the interval.
        let (lo99, hi99) = bootstrap_mean_ci(&xs, 0.99, 500, 7);
        assert!(hi99 - lo99 >= hi - lo);
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(
            bootstrap_mean_ci(&xs, 0.9, 200, 42),
            bootstrap_mean_ci(&xs, 0.9, 200, 42)
        );
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn bootstrap_empty_panics() {
        let _ = bootstrap_mean_ci(&[], 0.9, 10, 1);
    }
}
