//! Reproduces **Fig. 4**: relative error of point persistent traffic
//! estimation vs the actual persistent volume — the proposed estimator
//! (Eq. 12) against the naive-AND benchmark, at `t = 5` (left panel) and
//! `t = 10` (right panel).
//!
//! Workload per Sec. VI-B: per-period volumes uniform in `(2000, 10000]`,
//! persistent core swept from `0.01·n_min` to `0.5·n_min` in steps of
//! `0.01·n_min`; `s = 3`, `f = 2`.

use crate::runner::run_trials;
use crate::stats::mean;
use crate::workload::{build_point_records_with, SizingPolicy};
use crate::{stats, trial_seed};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::SystemParams;
use ptm_core::point::{NaiveAndEstimator, PointEstimator};
use ptm_traffic::generate::PointScenario;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// The paper's sweep: fractions 0.01, 0.02, …, 0.50 of `n_min`.
pub fn paper_fractions() -> Vec<f64> {
    (1..=50).map(|i| i as f64 / 100.0).collect()
}

/// Configuration for one Fig. 4 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Config {
    /// Number of measurement periods (paper: 5 for the left panel, 10 for
    /// the right).
    pub t: usize,
    /// Persistent-core fractions of `n_min` to sweep.
    pub fractions: Vec<f64>,
    /// Runs averaged per fraction.
    pub runs_per_point: usize,
    /// System parameters (paper: f = 2, s = 3).
    pub params: SystemParams,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// How records are sized across periods (see the DESIGN.md calibration
    /// note); serialized by name.
    #[serde(skip)]
    pub sizing: SizingPolicy,
}

impl Fig4Config {
    /// The paper's panel at the given `t`.
    pub fn panel(t: usize) -> Self {
        Self {
            t,
            fractions: paper_fractions(),
            runs_per_point: 25,
            params: SystemParams::paper_default(),
            seed: 4242,
            threads: crate::runner::default_threads(),
            sizing: SizingPolicy::default(),
        }
    }
}

/// One swept point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig4Point {
    /// Persistent-core fraction of `n_min`.
    pub fraction: f64,
    /// Mean actual persistent volume across runs (the x-coordinate).
    pub actual_volume: f64,
    /// Mean relative error of the proposed estimator.
    pub proposed: f64,
    /// Mean relative error of the naive-AND benchmark.
    pub benchmark: f64,
}

/// One full panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Panel {
    /// Configuration echo.
    pub config: Fig4Config,
    /// Points ordered by fraction.
    pub points: Vec<Fig4Point>,
}

/// Runs one panel.
pub fn run(config: &Fig4Config) -> Fig4Panel {
    let location = LocationId::new(1);
    let points = config
        .fractions
        .iter()
        .map(|&fraction| {
            let key = (fraction * 1000.0).round() as u64;
            let trials = run_trials(config.runs_per_point, config.threads, |run_idx| {
                let seed = trial_seed(config.seed, &[config.t as u64, key, run_idx as u64]);
                let mut rng = ChaCha12Rng::seed_from_u64(seed);
                let scheme =
                    EncodingScheme::new(seed ^ 0xF1C4, config.params.num_representatives());
                let scenario = PointScenario::synthetic(&mut rng, config.t, fraction);
                // A zero persistent core cannot produce a relative error;
                // the smallest swept fraction keeps it positive.
                let truth = scenario.persistent.max(1) as f64;
                let records = build_point_records_with(
                    &scheme,
                    &config.params,
                    &scenario,
                    location,
                    config.sizing,
                    &mut rng,
                );
                let proposed = PointEstimator::new()
                    .estimate(&records)
                    .expect("synthetic records never saturate at f = 2");
                let benchmark = NaiveAndEstimator::new()
                    .estimate(&records)
                    .expect("synthetic records never saturate at f = 2");
                (
                    scenario.persistent as f64,
                    stats::relative_error(truth, proposed),
                    stats::relative_error(truth, benchmark),
                )
            });
            Fig4Point {
                fraction,
                actual_volume: mean(&trials.iter().map(|t| t.0).collect::<Vec<_>>()),
                proposed: mean(&trials.iter().map(|t| t.1).collect::<Vec<_>>()),
                benchmark: mean(&trials.iter().map(|t| t.2).collect::<Vec<_>>()),
            }
        })
        .collect();
    Fig4Panel {
        config: config.clone(),
        points,
    }
}

/// Renders a panel as an ASCII plot plus CSV.
pub fn render(panel: &Fig4Panel) -> String {
    let proposed: Vec<(f64, f64)> = panel
        .points
        .iter()
        .map(|p| (p.actual_volume, p.proposed))
        .collect();
    let benchmark: Vec<(f64, f64)> = panel
        .points
        .iter()
        .map(|p| (p.actual_volume, p.benchmark))
        .collect();
    let plot = ptm_report::Plot::new(
        format!(
            "Fig. 4 (t = {}): relative error vs persistent volume",
            panel.config.t
        ),
        "actual persistent traffic volume",
        "relative error",
    )
    .series(ptm_report::Series::new("Proposed", 'P', proposed))
    .series(ptm_report::Series::new("Benchmark", 'B', benchmark));
    plot.render()
}

/// Serializes a panel as CSV (`fraction,actual,proposed,benchmark`).
pub fn to_csv(panel: &Fig4Panel) -> String {
    let mut w = ptm_report::csv::CsvWriter::new();
    w.write_row([
        "fraction",
        "actual_volume",
        "proposed_rel_err",
        "benchmark_rel_err",
    ]);
    for p in &panel.points {
        w.write_row([
            p.fraction.to_string(),
            p.actual_volume.to_string(),
            p.proposed.to_string(),
            p.benchmark.to_string(),
        ]);
    }
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(t: usize) -> Fig4Config {
        Fig4Config {
            t,
            fractions: vec![0.02, 0.1, 0.3, 0.5],
            runs_per_point: 4,
            params: SystemParams::paper_default(),
            seed: 1,
            threads: 1,
            sizing: SizingPolicy::default(),
        }
    }

    #[test]
    fn proposed_beats_benchmark_at_small_volumes() {
        let panel = run(&small_config(5));
        // Headline claim of Fig. 4: at small persistent volume the benchmark
        // (transient collisions) is far off while the proposed estimator
        // stays accurate.
        let smallest = &panel.points[0];
        assert!(
            smallest.benchmark > 2.0 * smallest.proposed,
            "at fraction {}: proposed {} vs benchmark {}",
            smallest.fraction,
            smallest.proposed,
            smallest.benchmark
        );
        // Both converge as the persistent core grows.
        let largest = panel.points.last().expect("non-empty");
        assert!(largest.proposed < 0.15);
        assert!(largest.benchmark < 0.5);
    }

    #[test]
    fn more_periods_reduce_benchmark_error() {
        let p5 = run(&small_config(5));
        let p10 = run(&small_config(10));
        // AND of 10 bitmaps filters transients harder than AND of 5.
        let b5: f64 = p5.points.iter().map(|p| p.benchmark).sum();
        let b10: f64 = p10.points.iter().map(|p| p.benchmark).sum();
        assert!(b10 < b5, "t=10 total benchmark err {b10} vs t=5 {b5}");
    }

    #[test]
    fn render_and_csv() {
        let panel = run(&Fig4Config {
            fractions: vec![0.1, 0.4],
            runs_per_point: 2,
            ..small_config(5)
        });
        let text = render(&panel);
        assert!(text.contains("Fig. 4"));
        assert!(text.contains('P') && text.contains('B'));
        let csv = to_csv(&panel);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("fraction,"));
    }
}
