//! Reproduces **Table I**: relative error of point-to-point persistent
//! traffic estimation in the Sioux Falls network.
//!
//! The paper's setup (Sec. VI-A): `L'` is the location with the largest
//! total volume (node 10, `n' = 451,000` at trip-table scale 5); eight other
//! locations serve as `L`; `s = 3`, `f = 2`; 10 measurement periods with
//! freshly generated transient vehicles; results averaged over 1000 runs
//! (configurable here — the shape stabilises far earlier). The last row is
//! the *same-size bitmaps* baseline (`m' = m`) at `t = 5`.

use crate::runner::run_trials;
use crate::stats::mean;
use crate::workload::{build_p2p_records, sizing};
use crate::{stats, trial_seed};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::SystemParams;
use ptm_traffic::generate::P2pScenario;
use ptm_traffic::network::NodeId;
use ptm_traffic::sioux_falls;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// The paper's eight `L` locations (1-based Sioux Falls node labels), in
/// Table I column order. Decoded from the published `n` and `n''` values,
/// which match these nodes' involving volumes and pair volumes with node 10
/// exactly (see `ptm_traffic::sioux_falls` tests).
pub const PAPER_LOCATIONS: [usize; 8] = [15, 12, 7, 24, 6, 18, 2, 3];

/// The paper's `L'`: node 10, the busiest location.
pub const PAPER_L_PRIME: usize = 10;

/// Configuration for the Table I experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Config {
    /// Period counts to evaluate (paper: 3, 5, 7, 10).
    pub t_values: Vec<usize>,
    /// Period count for the same-size baseline row (paper: 5).
    pub baseline_t: usize,
    /// Simulation runs to average per cell (paper: 1000).
    pub runs: usize,
    /// System parameters (paper: f = 2, s = 3).
    pub params: SystemParams,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            t_values: vec![3, 5, 7, 10],
            baseline_t: 5,
            runs: 50,
            params: SystemParams::paper_default(),
            seed: 42,
            threads: crate::runner::default_threads(),
        }
    }
}

/// One Table I column (one location `L`).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// 1-based Sioux Falls node label.
    pub node: usize,
    /// Total volume `n` at `L`.
    pub n: u64,
    /// Bitmap size `m` at `L`.
    pub m: usize,
    /// Size ratio `m' / m`.
    pub m_ratio: usize,
    /// True common-vehicle count `n''`.
    pub n_common: u64,
    /// Mean relative error for each configured `t`.
    pub rel_err_by_t: Vec<f64>,
    /// Mean relative error of the same-size baseline at `baseline_t`.
    pub rel_err_same_size: f64,
}

/// The full Table I result.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Configuration echo.
    pub config: Table1Config,
    /// Volume `n'` at `L'`.
    pub n_prime: u64,
    /// Bitmap size `m'` at `L'`.
    pub m_prime: usize,
    /// One row per location.
    pub rows: Vec<Table1Row>,
}

/// Runs the experiment.
pub fn run(config: &Table1Config) -> Table1Result {
    let table = sioux_falls::paper_trip_table();
    let l_prime = NodeId::new(PAPER_L_PRIME - 1);
    let n_prime = table.involving_volume(l_prime);
    let m_prime = config.params.bitmap_size(n_prime as f64).get();
    let t_max = config
        .t_values
        .iter()
        .copied()
        .chain([config.baseline_t])
        .max()
        .expect("non-empty t values");

    let rows = PAPER_LOCATIONS
        .iter()
        .map(|&node_label| {
            let node = NodeId::new(node_label - 1);
            let scenario = P2pScenario::from_trip_table(&table, node, l_prime, t_max);
            let n = table.involving_volume(node);
            let m = sizing(&config.params, &scenario.volumes_l);
            let estimator = PointToPointEstimator::new(config.params.num_representatives());
            let truth = scenario.persistent as f64;

            // One trial = fresh fleet + transients; measures every t plus
            // the baseline so record generation is shared.
            let trials = run_trials(config.runs, config.threads, |run_idx| {
                let seed = trial_seed(config.seed, &[node_label as u64, run_idx as u64]);
                let mut rng = ChaCha12Rng::seed_from_u64(seed);
                let scheme =
                    EncodingScheme::new(seed ^ 0xABCD, config.params.num_representatives());
                let loc_l = LocationId::new(node_label as u64);
                let loc_lp = LocationId::new(PAPER_L_PRIME as u64);
                let records = build_p2p_records(
                    &scheme,
                    &config.params,
                    &scenario,
                    loc_l,
                    loc_lp,
                    None,
                    &mut rng,
                );
                let per_t: Vec<f64> = config
                    .t_values
                    .iter()
                    .map(|&t| {
                        let est = estimator
                            .estimate(&records.records_l[..t], &records.records_lp[..t])
                            .expect("paper-scale records never saturate");
                        stats::relative_error(truth, est)
                    })
                    .collect();

                // Same-size baseline: L' encoded into bitmaps of size m.
                let baseline_records = build_p2p_records(
                    &scheme,
                    &config.params,
                    &scenario,
                    loc_l,
                    loc_lp,
                    Some(m),
                    &mut rng,
                );
                let baseline_est = estimator
                    .estimate(
                        &baseline_records.records_l[..config.baseline_t],
                        &baseline_records.records_lp[..config.baseline_t],
                    )
                    .expect("baseline records never saturate at paper scale");
                (per_t, stats::relative_error(truth, baseline_est))
            });

            let rel_err_by_t: Vec<f64> = (0..config.t_values.len())
                .map(|k| mean(&trials.iter().map(|(per_t, _)| per_t[k]).collect::<Vec<_>>()))
                .collect();
            let rel_err_same_size = mean(
                &trials
                    .iter()
                    .map(|&(_, baseline)| baseline)
                    .collect::<Vec<_>>(),
            );

            Table1Row {
                node: node_label,
                n,
                m: m.get(),
                m_ratio: m_prime / m.get(),
                n_common: scenario.persistent,
                rel_err_by_t,
                rel_err_same_size,
            }
        })
        .collect();

    Table1Result {
        config: config.clone(),
        n_prime,
        m_prime,
        rows,
    }
}

/// Renders the result in the paper's layout (locations as columns).
pub fn render(result: &Table1Result) -> String {
    use ptm_report::table::fmt_f64;
    let mut header = vec!["L".to_owned()];
    header.extend((1..=result.rows.len()).map(|i| i.to_string()));
    let mut table = ptm_report::TextTable::new(header);
    let row_of = |label: &str, cells: Vec<String>| {
        let mut row = vec![label.to_owned()];
        row.extend(cells);
        row
    };
    table.add_row(row_of(
        "node",
        result.rows.iter().map(|r| r.node.to_string()).collect(),
    ));
    table.add_row(row_of(
        "n",
        result.rows.iter().map(|r| r.n.to_string()).collect(),
    ));
    table.add_row(row_of(
        "m",
        result.rows.iter().map(|r| r.m.to_string()).collect(),
    ));
    table.add_row(row_of(
        "m'/m",
        result.rows.iter().map(|r| r.m_ratio.to_string()).collect(),
    ));
    table.add_row(row_of(
        "n''",
        result.rows.iter().map(|r| r.n_common.to_string()).collect(),
    ));
    for (k, &t) in result.config.t_values.iter().enumerate() {
        table.add_row(row_of(
            &format!("relative error (t = {t})"),
            result
                .rows
                .iter()
                .map(|r| fmt_f64(r.rel_err_by_t[k], 4))
                .collect(),
        ));
    }
    table.add_row(row_of(
        &format!("same-size bitmaps (t = {})", result.config.baseline_t),
        result
            .rows
            .iter()
            .map(|r| fmt_f64(r.rel_err_same_size, 4))
            .collect(),
    ));
    format!(
        "Table I: point-to-point persistent traffic, Sioux Falls (L' = node {}, n' = {}, m' = {}, {} runs)\n{}",
        PAPER_L_PRIME,
        result.n_prime,
        result.m_prime,
        result.config.runs,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced-size smoke run; the full-scale assertions live in the
    /// integration suite.
    #[test]
    fn small_run_matches_paper_shape() {
        let config = Table1Config {
            runs: 3,
            threads: 1,
            ..Table1Config::default()
        };
        let result = run(&config);
        assert_eq!(result.n_prime, 451_000);
        assert_eq!(result.m_prime, 1_048_576);
        assert_eq!(result.rows.len(), 8);

        // Published metadata columns must match exactly.
        let expected_n = [
            213_000, 140_000, 121_000, 78_000, 76_000, 47_000, 40_000, 28_000,
        ];
        let expected_m = [
            524_288, 524_288, 262_144, 262_144, 262_144, 131_072, 131_072, 65_536,
        ];
        let expected_ratio = [2, 2, 4, 4, 4, 8, 8, 16];
        let expected_common = [40_000, 20_000, 19_000, 8_000, 8_000, 7_000, 6_000, 3_000];
        for (i, row) in result.rows.iter().enumerate() {
            assert_eq!(row.n, expected_n[i], "n at column {i}");
            assert_eq!(row.m, expected_m[i], "m at column {i}");
            assert_eq!(row.m_ratio, expected_ratio[i], "ratio at column {i}");
            assert_eq!(row.n_common, expected_common[i], "n'' at column {i}");
            // Errors are small even at 3 runs; the paper's worst cell is ~0.1.
            for (&err, &t) in row.rel_err_by_t.iter().zip(&config.t_values) {
                assert!(err < 0.35, "node {} t={t}: error {err}", row.node);
            }
        }
        // The same-size baseline degrades with the size ratio: the last
        // column (ratio 16) must be far worse than the first (ratio 2).
        let first = &result.rows[0];
        let last = &result.rows[7];
        assert!(
            last.rel_err_same_size > 5.0 * first.rel_err_same_size,
            "baseline: ratio-16 err {} vs ratio-2 err {}",
            last.rel_err_same_size,
            first.rel_err_same_size
        );
        // And it is much worse than the proposed estimator at the same t.
        let t5 = config
            .t_values
            .iter()
            .position(|&t| t == 5)
            .expect("t=5 present");
        assert!(last.rel_err_same_size > 5.0 * last.rel_err_by_t[t5]);
    }

    #[test]
    fn render_contains_all_rows() {
        let config = Table1Config {
            runs: 1,
            threads: 1,
            t_values: vec![3],
            baseline_t: 3,
            ..Table1Config::default()
        };
        let result = run(&config);
        let text = render(&result);
        assert!(text.contains("Table I"));
        assert!(text.contains("relative error (t = 3)"));
        assert!(text.contains("same-size bitmaps"));
        assert!(text.contains("451000"));
    }
}
