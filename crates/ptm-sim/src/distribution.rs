//! Error-distribution analysis for the estimators.
//!
//! The paper reports *mean* relative errors; this module characterises the
//! full error distribution at a configuration — signed relative error
//! samples, bootstrap confidence intervals for the mean, and an ASCII
//! histogram — to show the estimators are unbiased rather than merely
//! small-on-average.

use crate::runner::run_trials;
use crate::stats::{bootstrap_mean_ci, mean, std_dev};
use crate::trial_seed;
use crate::workload::{build_p2p_records, build_point_records};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::SystemParams;
use ptm_core::point::PointEstimator;
use ptm_traffic::generate::{P2pScenario, PointScenario};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// Which estimator to characterise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Target {
    /// Point persistent estimation (Sec. III).
    Point,
    /// Point-to-point persistent estimation (Sec. IV).
    PointToPoint,
}

/// Configuration of a distribution study.
#[derive(Debug, Clone, Serialize)]
pub struct DistributionConfig {
    /// Which estimator.
    pub target: Target,
    /// Number of periods.
    pub t: usize,
    /// Persistent-core fraction of `n_min`.
    pub fraction: f64,
    /// System parameters.
    pub params: SystemParams,
    /// Sample size (independent runs).
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl DistributionConfig {
    /// Paper-default settings for the given estimator.
    pub fn paper(target: Target) -> Self {
        Self {
            target,
            t: 5,
            fraction: 0.2,
            params: SystemParams::paper_default(),
            runs: 200,
            seed: 777,
            threads: crate::runner::default_threads(),
        }
    }
}

/// The resulting sample and its summary.
#[derive(Debug, Clone, Serialize)]
pub struct DistributionResult {
    /// Configuration echo.
    pub config: DistributionConfig,
    /// Signed relative errors `(n̂ − n) / n`, one per run.
    pub signed_errors: Vec<f64>,
    /// Mean signed error (bias).
    pub bias: f64,
    /// Standard deviation of the signed error.
    pub std_dev: f64,
    /// 95 % bootstrap CI for the bias.
    pub bias_ci: (f64, f64),
}

impl DistributionResult {
    /// Whether zero bias is inside the 95 % confidence interval.
    pub fn unbiased_at_95(&self) -> bool {
        self.bias_ci.0 <= 0.0 && 0.0 <= self.bias_ci.1
    }
}

/// Runs the study.
pub fn run(config: &DistributionConfig) -> DistributionResult {
    let signed_errors = run_trials(config.runs, config.threads, |run_idx| {
        let seed = trial_seed(config.seed, &[run_idx as u64]);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let scheme = EncodingScheme::new(seed ^ 0xD157, config.params.num_representatives());
        match config.target {
            Target::Point => {
                let scenario = PointScenario::synthetic(&mut rng, config.t, config.fraction);
                let records = build_point_records(
                    &scheme,
                    &config.params,
                    &scenario,
                    LocationId::new(1),
                    &mut rng,
                );
                let est = PointEstimator::new()
                    .estimate(&records)
                    .expect("no saturation");
                (est - scenario.persistent as f64) / scenario.persistent as f64
            }
            Target::PointToPoint => {
                let scenario = P2pScenario::synthetic(&mut rng, config.t, config.fraction);
                let records = build_p2p_records(
                    &scheme,
                    &config.params,
                    &scenario,
                    LocationId::new(1),
                    LocationId::new(2),
                    None,
                    &mut rng,
                );
                let est = PointToPointEstimator::new(config.params.num_representatives())
                    .estimate(&records.records_l, &records.records_lp)
                    .expect("no saturation");
                (est - scenario.persistent as f64) / scenario.persistent as f64
            }
        }
    });
    let bias = mean(&signed_errors);
    let sd = std_dev(&signed_errors);
    let bias_ci = bootstrap_mean_ci(&signed_errors, 0.95, 1_000, config.seed ^ 0xB007);
    DistributionResult {
        config: config.clone(),
        signed_errors,
        bias,
        std_dev: sd,
        bias_ci,
    }
}

/// Renders the histogram plus the summary line.
pub fn render(result: &DistributionResult) -> String {
    let hist = ptm_report::Histogram::from_samples(&result.signed_errors, 15);
    format!(
        "signed relative error distribution ({:?}, t = {}, fraction = {}, {} runs)\n{}\nbias {:+.4} (95% CI [{:+.4}, {:+.4}]), std {:.4}{}\n",
        result.config.target,
        result.config.t,
        result.config.fraction,
        result.config.runs,
        hist.render(40),
        result.bias,
        result.bias_ci.0,
        result.bias_ci.1,
        result.std_dev,
        if result.unbiased_at_95() { " — unbiased at 95%" } else { "" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(target: Target) -> DistributionConfig {
        DistributionConfig {
            runs: 40,
            threads: 1,
            seed: 3,
            ..DistributionConfig::paper(target)
        }
    }

    #[test]
    fn point_estimator_is_roughly_unbiased() {
        let result = run(&small(Target::Point));
        assert_eq!(result.signed_errors.len(), 40);
        // Bias should be small relative to spread at these settings.
        assert!(
            result.bias.abs() < 0.1,
            "bias {} (CI {:?})",
            result.bias,
            result.bias_ci
        );
        assert!(result.std_dev < 0.2, "std {}", result.std_dev);
    }

    #[test]
    fn p2p_estimator_spread_is_bounded() {
        let result = run(&small(Target::PointToPoint));
        assert!(result.bias.abs() < 0.15, "bias {}", result.bias);
        assert!(result.std_dev < 0.3, "std {}", result.std_dev);
    }

    #[test]
    fn render_mentions_bias_and_histogram() {
        let result = run(&DistributionConfig {
            runs: 20,
            ..small(Target::Point)
        });
        let text = render(&result);
        assert!(text.contains("bias"));
        assert!(text.contains('#'));
        assert!(text.contains("95% CI"));
    }

    #[test]
    fn ci_brackets_bias() {
        let result = run(&small(Target::Point));
        assert!(result.bias_ci.0 <= result.bias && result.bias <= result.bias_ci.1);
    }
}
