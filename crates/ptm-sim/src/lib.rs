//! Experiment harness for the persistent traffic measurement reproduction.
//!
//! One driver per table/figure of the paper's evaluation (Sec. VI):
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table I — point-to-point relative error on Sioux Falls, t ∈ {3,5,7,10}, plus the same-size-bitmap baseline |
//! | [`fig4`] | Fig. 4 — point persistent relative error vs volume, proposed vs naive AND benchmark, t ∈ {5,10} |
//! | [`scatter`] | Figs. 5–6 — actual-vs-estimated scatters for point and point-to-point traffic at f ∈ {2,3} |
//! | [`table2`] | Table II — the noise-to-information privacy grid over (f, s), with a Monte-Carlo cross-check |
//! | [`ablation`] | beyond the paper: split strategies, the f-sweep accuracy–privacy frontier, s-sweep, and channel-loss sensitivity |
//!
//! Shared machinery: [`workload`] builds traffic records from scenarios
//! (real encoding for persistent vehicles, the documented uniform-bit
//! shortcut for transients), [`runner`] fans independent trials across
//! threads, and [`stats`] aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod distribution;
pub mod fig4;
pub mod matrix;
pub mod runner;
pub mod scatter;
pub mod stats;
pub mod table1;
pub mod table2;
pub mod workload;

/// Mixes a base seed with experiment coordinates into a per-trial seed.
///
/// SplitMix64-style finalizer: decorrelates seeds that differ in a single
/// coordinate so parallel trials never share RNG streams.
pub fn trial_seed(base: u64, coords: &[u64]) -> u64 {
    let mut state = base ^ 0x9e37_79b9_7f4a_7c15;
    for &c in coords {
        state = state.wrapping_add(c).wrapping_add(0x9e37_79b9_7f4a_7c15);
        state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        state ^= state >> 31;
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_differ_per_coordinate() {
        let a = trial_seed(1, &[0, 0]);
        let b = trial_seed(1, &[0, 1]);
        let c = trial_seed(1, &[1, 0]);
        let d = trial_seed(2, &[0, 0]);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "seeds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn trial_seed_is_deterministic() {
        assert_eq!(trial_seed(7, &[1, 2, 3]), trial_seed(7, &[1, 2, 3]));
    }
}
