//! Ablation experiments beyond the paper's evaluation.
//!
//! * [`split_strategy`] — the paper splits `Π` into first/second halves;
//!   does an interleaved split help when traffic trends over the periods?
//! * [`tradeoff_frontier`] — the accuracy–privacy frontier: estimation
//!   error and noise-to-information ratio side by side across `f`
//!   (quantifying the paper's Sec. VI-C tradeoff discussion).
//! * [`s_sweep`] — the paper evaluates `s` only on the privacy side;
//!   this measures the accuracy cost of larger `s` for point-to-point
//!   estimation.
//! * [`loss_sensitivity`] — drives the full V2I protocol simulator under
//!   increasing frame loss and measures the induced estimation bias
//!   (vehicles whose reports never land disappear from the records).

use crate::runner::run_trials;
use crate::stats::mean;
use crate::workload::{build_p2p_records, build_point_records};
use crate::{stats, trial_seed};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::join::SplitStrategy;
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::{BitmapSize, SystemParams};
use ptm_core::point::PointEstimator;
use ptm_core::privacy;
use ptm_core::record::PeriodId;
use ptm_net::{ChannelModel, SimConfig, SimDuration, V2iSimulator};
use ptm_traffic::generate::{P2pScenario, PointScenario};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// Result of the split-strategy ablation.
#[derive(Debug, Clone, Serialize)]
pub struct SplitAblation {
    /// Mean relative error with the paper's halves split.
    pub halves: f64,
    /// Mean relative error with the interleaved split.
    pub interleaved: f64,
    /// Runs averaged.
    pub runs: usize,
}

/// Compares split strategies on a workload whose per-period volume grows
/// linearly (e.g. weekday traffic ramping up), which makes the two halves
/// of the paper's split unbalanced.
pub fn split_strategy(t: usize, runs: usize, threads: usize, seed: u64) -> SplitAblation {
    let params = SystemParams::paper_default();
    let location = LocationId::new(1);
    let trials = run_trials(runs, threads, |run_idx| {
        let s = trial_seed(seed, &[run_idx as u64]);
        let mut rng = ChaCha12Rng::seed_from_u64(s);
        let scheme = EncodingScheme::new(s ^ 0xAB1E, params.num_representatives());
        // Trending volumes: 3000 climbing to 9000 across the periods.
        let volumes: Vec<u64> = (0..t)
            .map(|j| 3000 + (6000 * j as u64) / (t.max(2) as u64 - 1))
            .collect();
        let scenario = PointScenario {
            volumes,
            persistent: 600,
        };
        let records = build_point_records(&scheme, &params, &scenario, location, &mut rng);
        let halves = PointEstimator::with_split(SplitStrategy::Halves)
            .estimate(&records)
            .expect("no saturation at f = 2");
        let inter = PointEstimator::with_split(SplitStrategy::Interleaved)
            .estimate(&records)
            .expect("no saturation at f = 2");
        (
            stats::relative_error(600.0, halves),
            stats::relative_error(600.0, inter),
        )
    });
    SplitAblation {
        halves: mean(&trials.iter().map(|t| t.0).collect::<Vec<_>>()),
        interleaved: mean(&trials.iter().map(|t| t.1).collect::<Vec<_>>()),
        runs,
    }
}

/// One point on the accuracy–privacy frontier.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FrontierPoint {
    /// Load factor `f`.
    pub load_factor: f64,
    /// Mean relative error of point persistent estimation.
    pub point_rel_err: f64,
    /// Mean relative error of point-to-point estimation.
    pub p2p_rel_err: f64,
    /// Noise-to-information ratio at this `f` (s fixed).
    pub privacy_ratio: f64,
}

/// Sweeps `f`, reporting accuracy and privacy together — the quantified
/// version of the paper's "tradeoff through parameter setting".
pub fn tradeoff_frontier(
    load_factors: &[f64],
    t: usize,
    runs: usize,
    threads: usize,
    seed: u64,
) -> Vec<FrontierPoint> {
    load_factors
        .iter()
        .map(|&f| {
            let params = SystemParams::new(f, 3);
            let trials = run_trials(runs, threads, |run_idx| {
                let s = trial_seed(seed, &[(f * 10.0) as u64, run_idx as u64]);
                let mut rng = ChaCha12Rng::seed_from_u64(s);
                let scheme = EncodingScheme::new(s ^ 0xF00D, 3);
                let point_sc = PointScenario::synthetic(&mut rng, t, 0.2);
                let records =
                    build_point_records(&scheme, &params, &point_sc, LocationId::new(1), &mut rng);
                let point_est = PointEstimator::new()
                    .estimate(&records)
                    .expect("no saturation for f >= 1");
                let p2p_sc = P2pScenario::synthetic(&mut rng, t, 0.2);
                let p2p_records = build_p2p_records(
                    &scheme,
                    &params,
                    &p2p_sc,
                    LocationId::new(1),
                    LocationId::new(2),
                    None,
                    &mut rng,
                );
                let p2p_est = PointToPointEstimator::new(3)
                    .estimate(&p2p_records.records_l, &p2p_records.records_lp)
                    .expect("no saturation for f >= 1");
                (
                    stats::relative_error(point_sc.persistent as f64, point_est),
                    stats::relative_error(p2p_sc.persistent as f64, p2p_est),
                )
            });
            FrontierPoint {
                load_factor: f,
                point_rel_err: mean(&trials.iter().map(|t| t.0).collect::<Vec<_>>()),
                p2p_rel_err: mean(&trials.iter().map(|t| t.1).collect::<Vec<_>>()),
                privacy_ratio: privacy::asymptotic_ratio(f, 3),
            }
        })
        .collect()
}

/// One point of the `s` sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SSweepPoint {
    /// Representative count `s`.
    pub s: u32,
    /// Mean relative error of point-to-point estimation.
    pub p2p_rel_err: f64,
    /// Privacy ratio at `f = 2` for this `s`.
    pub privacy_ratio: f64,
}

/// Accuracy cost of the representative count `s` (p2p estimation, f = 2).
pub fn s_sweep(
    s_values: &[u32],
    t: usize,
    runs: usize,
    threads: usize,
    seed: u64,
) -> Vec<SSweepPoint> {
    s_values
        .iter()
        .map(|&s| {
            let params = SystemParams::new(2.0, s);
            let trials = run_trials(runs, threads, |run_idx| {
                let sd = trial_seed(seed, &[s as u64, run_idx as u64]);
                let mut rng = ChaCha12Rng::seed_from_u64(sd);
                let scheme = EncodingScheme::new(sd ^ 0x5EE5, s);
                let scenario = P2pScenario::synthetic(&mut rng, t, 0.2);
                let records = build_p2p_records(
                    &scheme,
                    &params,
                    &scenario,
                    LocationId::new(1),
                    LocationId::new(2),
                    None,
                    &mut rng,
                );
                let est = PointToPointEstimator::new(s)
                    .estimate(&records.records_l, &records.records_lp)
                    .expect("no saturation at f = 2");
                stats::relative_error(scenario.persistent as f64, est)
            });
            SSweepPoint {
                s,
                p2p_rel_err: mean(&trials),
                privacy_ratio: privacy::asymptotic_ratio(2.0, s),
            }
        })
        .collect()
}

/// Result of the sizing-policy ablation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SizingAblation {
    /// Mean relative error with per-period sizing (paper Fig. 3 style).
    pub per_period: f64,
    /// Mean relative error with one campaign-wide size per location.
    pub campaign_mean: f64,
    /// Runs averaged.
    pub runs: usize,
}

/// Quantifies the cost of per-period bitmap sizing: records of different
/// sizes at one location join through replication-expansion, whose
/// correlated replica bits add noise relative to a single campaign-wide
/// size (see the calibration note in DESIGN.md).
pub fn sizing_policy(t: usize, runs: usize, threads: usize, seed: u64) -> SizingAblation {
    use crate::workload::{build_point_records_with, SizingPolicy};
    let params = SystemParams::paper_default();
    let location = LocationId::new(1);
    let trials = run_trials(runs, threads, |run_idx| {
        let s = trial_seed(seed, &[run_idx as u64]);
        let scheme = EncodingScheme::new(s ^ 0x512E, params.num_representatives());
        let mut errs = [0.0f64; 2];
        for (slot, policy) in [SizingPolicy::PerPeriod, SizingPolicy::CampaignMean]
            .into_iter()
            .enumerate()
        {
            // Same scenario and seed for both policies.
            let mut rng = ChaCha12Rng::seed_from_u64(s);
            let scenario = PointScenario::synthetic(&mut rng, t, 0.1);
            let records =
                build_point_records_with(&scheme, &params, &scenario, location, policy, &mut rng);
            let est = PointEstimator::new()
                .estimate(&records)
                .expect("no saturation");
            errs[slot] = stats::relative_error(scenario.persistent as f64, est);
        }
        errs
    });
    SizingAblation {
        per_period: mean(&trials.iter().map(|e| e[0]).collect::<Vec<_>>()),
        campaign_mean: mean(&trials.iter().map(|e| e[1]).collect::<Vec<_>>()),
        runs,
    }
}

/// One point of the k-way split sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct KwayPoint {
    /// Number of groups the records are split into.
    pub k: usize,
    /// Mean relative error of the k-way estimator.
    pub rel_err: f64,
}

/// Tests the paper's Sec. III-B remark that "dividing Π into more than two
/// sets is possible \[but\] the two-set solution … works effectively":
/// sweeps the group count `k` of [`ptm_core::kway::KwayEstimator`] on the
/// synthetic point workload.
pub fn kway_sweep(
    k_values: &[usize],
    t: usize,
    runs: usize,
    threads: usize,
    seed: u64,
) -> Vec<KwayPoint> {
    let params = SystemParams::paper_default();
    k_values
        .iter()
        .map(|&k| {
            let trials = run_trials(runs, threads, |run_idx| {
                let s = trial_seed(seed, &[k as u64, run_idx as u64]);
                let mut rng = ChaCha12Rng::seed_from_u64(s);
                let scheme = EncodingScheme::new(s ^ 0x4A1, 3);
                let scenario = PointScenario::synthetic(&mut rng, t, 0.1);
                let records =
                    build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);
                let est = ptm_core::kway::KwayEstimator::new(k)
                    .estimate(&records)
                    .expect("no saturation at f = 2");
                stats::relative_error(scenario.persistent as f64, est)
            });
            KwayPoint {
                k,
                rel_err: mean(&trials),
            }
        })
        .collect()
}

/// One point of the loss-sensitivity sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LossPoint {
    /// Frame loss probability.
    pub loss: f64,
    /// True persistent volume.
    pub truth: f64,
    /// Estimated persistent volume from records collected over the lossy
    /// protocol.
    pub estimate: f64,
    /// Fraction of physical passes whose report reached an RSU record.
    pub capture_rate: f64,
}

/// Drives the full V2I event simulator at increasing frame-loss rates and
/// measures how much persistent traffic the estimator loses when reports
/// never land. Dwell time is short (2 s) so that retries cannot fully mask
/// the loss.
pub fn loss_sensitivity(losses: &[f64], seed: u64) -> Vec<LossPoint> {
    losses
        .iter()
        .map(|&loss| {
            let config = SimConfig {
                channel: ChannelModel::with_loss(loss),
                dwell_time: SimDuration::from_secs(2),
                beacon_interval: SimDuration::from_secs(1),
                period_length: SimDuration::from_secs(60),
            };
            let scheme = EncodingScheme::new(trial_seed(seed, &[(loss * 100.0) as u64]), 3);
            let location = LocationId::new(1);
            let size = BitmapSize::new(2048).expect("power of two");
            let mut sim = V2iSimulator::new(config, scheme, &[(location, size)], seed);
            let commons: Vec<usize> = (0..150).map(|_| sim.add_vehicle()).collect();
            let periods: Vec<PeriodId> = (0..4).map(PeriodId::new).collect();
            let mut passes = 0u64;
            for &p in &periods {
                for (k, &v) in commons.iter().enumerate() {
                    sim.schedule_pass(v, 0, SimDuration::from_millis(50 * k as u64));
                    passes += 1;
                }
                for k in 0..200usize {
                    let tr = sim.add_vehicle();
                    sim.schedule_pass(tr, 0, SimDuration::from_millis(100 + 50 * k as u64));
                    passes += 1;
                }
                sim.run_period(p).expect("unique period ids");
            }
            let truth = sim.presence().point_persistent(location, &periods) as f64;
            let estimate = sim
                .server()
                .estimate_point_persistent(location, &periods)
                .unwrap_or(0.0);
            let capture_rate = sim.stats().reports_accepted.min(passes) as f64 / passes as f64;
            LossPoint {
                loss,
                truth,
                estimate,
                capture_rate,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ablation_both_strategies_work() {
        let result = split_strategy(6, 6, 1, 11);
        assert!(result.halves < 0.2, "halves error {}", result.halves);
        assert!(
            result.interleaved < 0.2,
            "interleaved error {}",
            result.interleaved
        );
    }

    #[test]
    fn frontier_error_decreases_with_f_and_privacy_too() {
        let frontier = tradeoff_frontier(&[1.0, 2.0, 4.0], 5, 6, 1, 12);
        assert_eq!(frontier.len(), 3);
        // Accuracy improves (error falls) with f...
        assert!(
            frontier[2].point_rel_err < frontier[0].point_rel_err,
            "f=4 err {} vs f=1 err {}",
            frontier[2].point_rel_err,
            frontier[0].point_rel_err
        );
        // ...while privacy (the ratio) falls: that is the tradeoff.
        assert!(frontier[2].privacy_ratio < frontier[0].privacy_ratio);
    }

    #[test]
    fn s_sweep_privacy_grows_with_s() {
        let sweep = s_sweep(&[2, 5], 5, 6, 1, 13);
        assert!(sweep[1].privacy_ratio > sweep[0].privacy_ratio);
        // Accuracy stays usable at both ends.
        for p in &sweep {
            assert!(p.p2p_rel_err < 0.5, "s={} err {}", p.s, p.p2p_rel_err);
        }
    }

    #[test]
    fn sizing_policy_campaign_mean_is_tighter() {
        let result = sizing_policy(5, 8, 1, 21);
        assert!(
            result.per_period < 0.6,
            "per-period error {}",
            result.per_period
        );
        assert!(
            result.campaign_mean <= result.per_period,
            "campaign-mean {} should not exceed per-period {}",
            result.campaign_mean,
            result.per_period
        );
    }

    #[test]
    fn kway_sweep_two_groups_hold_up() {
        let sweep = kway_sweep(&[2, 3, 4], 12, 5, 1, 15);
        assert_eq!(sweep.len(), 3);
        for p in &sweep {
            assert!(p.rel_err < 0.25, "k={}: error {}", p.k, p.rel_err);
        }
        // The paper's claim: k = 2 is already effective — more groups must
        // not be dramatically better.
        assert!(
            sweep[0].rel_err < 3.0 * sweep[2].rel_err + 0.05,
            "k=2 err {} vs k=4 err {}",
            sweep[0].rel_err,
            sweep[2].rel_err
        );
    }

    #[test]
    fn loss_sweep_degrades_gracefully() {
        let sweep = loss_sensitivity(&[0.0, 0.9], 14);
        let clean = &sweep[0];
        let lossy = &sweep[1];
        assert_eq!(clean.truth, 150.0);
        // Lossless: estimator sees everything.
        assert!((clean.estimate - clean.truth).abs() / clean.truth < 0.35);
        assert!(clean.capture_rate > 0.99);
        // Heavy loss with short dwell: fewer captures, estimate biased low.
        assert!(lossy.capture_rate < clean.capture_rate);
        assert!(lossy.estimate < clean.estimate + 1.0);
    }
}
