//! Reproduces **Table II**: the probabilistic noise-to-information ratio
//! over the `(f, s)` grid, plus the noise row `p`.
//!
//! The grid itself is analytic (Sec. V closed forms under the sizing rule
//! `m' = f·n'`); the driver optionally cross-checks a cell empirically by
//! Monte-Carlo simulation of the actual encoding process.

use ptm_core::privacy::{self, PrivacyCell};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// Optional Monte-Carlo cross-check settings.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MonteCarloCheck {
    /// Traffic volume `n'` at the checked location.
    pub n_prime: u64,
    /// Trials per checked cell.
    pub trials: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MonteCarloCheck {
    fn default() -> Self {
        // Cost is O(n_prime x trials); these defaults keep the check at
        // ~10^7 encode simulations while leaving sampling error well below
        // the 4th decimal of the grid cells being checked.
        Self {
            n_prime: 2_000,
            trials: 5_000,
            seed: 7,
        }
    }
}

/// Configuration for the Table II reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Config {
    /// Load factors (paper: 1, 1.5, …, 4).
    pub load_factors: Vec<f64>,
    /// Representative counts (paper: 2..5).
    pub s_values: Vec<u32>,
    /// Cross-check the analytic values against simulation.
    pub monte_carlo: Option<MonteCarloCheck>,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            load_factors: vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
            s_values: vec![2, 3, 4, 5],
            monte_carlo: Some(MonteCarloCheck::default()),
        }
    }
}

/// A Monte-Carlo cross-check outcome for one `(f, s)` cell.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct McOutcome {
    /// Load factor.
    pub load_factor: f64,
    /// Representative count.
    pub s: u32,
    /// Analytic ratio.
    pub analytic_ratio: f64,
    /// Empirical ratio from simulated encodings.
    pub empirical_ratio: f64,
    /// Analytic noise `p`.
    pub analytic_noise: f64,
    /// Empirical noise.
    pub empirical_noise: f64,
}

/// The full Table II result.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Result {
    /// Configuration echo.
    pub config: Table2Config,
    /// Ratio cells, grouped by `s` then `f` (paper layout).
    pub cells: Vec<PrivacyCell>,
    /// Monte-Carlo outcomes (diagonal cells of the grid), if requested.
    pub monte_carlo: Vec<McOutcome>,
}

/// Runs the reproduction.
pub fn run(config: &Table2Config) -> Table2Result {
    let cells = privacy::privacy_table(&config.load_factors, &config.s_values);
    let monte_carlo = config
        .monte_carlo
        .map(|mc| {
            let mut rng = ChaCha12Rng::seed_from_u64(mc.seed);
            // Check the paper's recommended cell plus the grid corners.
            let mut targets = vec![(2.0, 3u32)];
            if let (Some(&f_lo), Some(&f_hi)) =
                (config.load_factors.first(), config.load_factors.last())
            {
                if let (Some(&s_lo), Some(&s_hi)) =
                    (config.s_values.first(), config.s_values.last())
                {
                    targets.push((f_lo, s_lo));
                    targets.push((f_hi, s_hi));
                }
            }
            targets
                .into_iter()
                .map(|(f, s)| {
                    let m_prime = (mc.n_prime as f64 * f).round() as usize;
                    let (p_hat, p_prime_hat) = privacy::simulate_noise_information(
                        &mut rng, mc.n_prime, m_prime, s, mc.trials,
                    );
                    let info = (p_prime_hat - p_hat).max(1e-9);
                    McOutcome {
                        load_factor: f,
                        s,
                        analytic_ratio: privacy::asymptotic_ratio(f, s),
                        empirical_ratio: p_hat / info,
                        analytic_noise: privacy::asymptotic_noise(f),
                        empirical_noise: p_hat,
                    }
                })
                .collect()
        })
        .unwrap_or_default();
    Table2Result {
        config: config.clone(),
        cells,
        monte_carlo,
    }
}

/// Renders the paper-layout grid (rows `s`, columns `f`, final row `p`).
pub fn render(result: &Table2Result) -> String {
    use ptm_report::table::fmt_f64;
    let mut header = vec!["s \\ f".to_owned()];
    header.extend(
        result
            .config
            .load_factors
            .iter()
            .map(|f| format!("f = {f}")),
    );
    let mut table = ptm_report::TextTable::new(header);
    for &s in &result.config.s_values {
        let mut row = vec![format!("s = {s}")];
        for &f in &result.config.load_factors {
            let cell = result
                .cells
                .iter()
                .find(|c| c.s == s && (c.load_factor - f).abs() < 1e-9)
                .expect("cell generated for every (f, s)");
            row.push(fmt_f64(cell.ratio, 4));
        }
        table.add_row(row);
    }
    let mut noise_row = vec!["p".to_owned()];
    for &f in &result.config.load_factors {
        noise_row.push(fmt_f64(ptm_core::privacy::asymptotic_noise(f), 4));
    }
    table.add_row(noise_row);

    let mut out = format!(
        "Table II: probabilistic noise-to-information ratio and noise p\n{}",
        table.render()
    );
    if !result.monte_carlo.is_empty() {
        out.push_str("\nMonte-Carlo cross-check (simulated encodings):\n");
        let mut mc_table = ptm_report::TextTable::new(vec![
            "cell".into(),
            "ratio (analytic)".into(),
            "ratio (simulated)".into(),
            "p (analytic)".into(),
            "p (simulated)".into(),
        ]);
        for mc in &result.monte_carlo {
            mc_table.add_row(vec![
                format!("f = {}, s = {}", mc.load_factor, mc.s),
                fmt_f64(mc.analytic_ratio, 4),
                fmt_f64(mc.empirical_ratio, 4),
                fmt_f64(mc.analytic_noise, 4),
                fmt_f64(mc.empirical_noise, 4),
            ]);
        }
        out.push_str(&mc_table.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_published_values() {
        let result = run(&Table2Config {
            monte_carlo: None,
            ..Table2Config::default()
        });
        assert_eq!(result.cells.len(), 28);
        // The paper's published grid, rows s = 2..5, columns f = 1..4.
        #[rustfmt::skip]
        let published: [[f64; 7]; 4] = [
            [3.4368, 1.8956, 1.2975, 0.9837, 0.7912, 0.6614, 0.5681],
            [5.1553, 2.8433, 1.9462, 1.4755, 1.1869, 0.9922, 0.8520],
            [6.8737, 3.7911, 2.5950, 1.9673, 1.5825, 1.3229, 1.1361],
            [8.5921, 4.7389, 3.2437, 2.4592, 1.9781, 1.6536, 1.4201],
        ];
        for (si, row) in published.iter().enumerate() {
            for (fi, &expected) in row.iter().enumerate() {
                let cell = &result.cells[si * 7 + fi];
                let rel = (cell.ratio - expected).abs() / expected;
                assert!(
                    rel < 3e-4,
                    "s = {}, f = {}: computed {} vs paper {}",
                    cell.s,
                    cell.load_factor,
                    cell.ratio,
                    expected
                );
            }
        }
    }

    #[test]
    fn monte_carlo_confirms_analytics() {
        let result = run(&Table2Config {
            monte_carlo: Some(MonteCarloCheck {
                n_prime: 4_000,
                trials: 10_000,
                seed: 3,
            }),
            ..Table2Config::default()
        });
        assert_eq!(result.monte_carlo.len(), 3);
        for mc in &result.monte_carlo {
            let ratio_rel = (mc.empirical_ratio - mc.analytic_ratio).abs() / mc.analytic_ratio;
            assert!(
                ratio_rel < 0.1,
                "cell f={} s={}: simulated ratio {} vs analytic {}",
                mc.load_factor,
                mc.s,
                mc.empirical_ratio,
                mc.analytic_ratio
            );
            assert!((mc.empirical_noise - mc.analytic_noise).abs() < 0.02);
        }
    }

    #[test]
    fn render_layout() {
        let result = run(&Table2Config::default());
        let text = render(&result);
        assert!(text.contains("Table II"));
        assert!(text.contains("s = 2"));
        assert!(text.contains("f = 4"));
        assert!(text.contains("1.9462")); // the paper's recommended cell
        assert!(text.contains("0.3935")); // p at f = 2
        assert!(text.contains("Monte-Carlo"));
    }
}
