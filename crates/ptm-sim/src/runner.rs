//! Parallel trial execution.
//!
//! Every experiment is a set of independent seeded trials; this module fans
//! them across threads with crossbeam's scoped threads. Results come back
//! in trial order regardless of scheduling, so a run is reproducible on any
//! core count.

use std::num::NonZeroUsize;
use std::time::Instant;

/// Chooses a sensible thread count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `trials` independent evaluations of `f(trial_index)` on up to
/// `threads` worker threads, returning results in trial order.
///
/// `f` must derive all randomness from the trial index (see
/// [`crate::trial_seed`]), so results are independent of the thread count.
///
/// # Panics
///
/// Panics if `threads` is zero, or propagates a panic from `f`.
pub fn run_trials<T, F>(trials: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    if trials == 0 {
        return Vec::new();
    }
    let _span = ptm_obs::span!("sim.run_trials");
    // Per-trial wall time plus a completion counter; `timed` is what every
    // execution path below actually calls.
    let timed = |i: usize| -> T {
        if !ptm_obs::metrics_enabled() {
            return f(i);
        }
        // ptm-analyze: allow(determinism): wall-clock feeds only the sim.trial.wall_ns metric, never trial results
        let started = Instant::now();
        let result = f(i);
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ptm_obs::histogram!("sim.trial.wall_ns").record(nanos);
        ptm_obs::counter!("sim.trials.completed").inc();
        result
    };
    if threads == 1 || trials == 1 {
        ptm_obs::gauge!("sim.workers").set(1);
        return (0..trials).map(timed).collect();
    }
    let workers = threads.min(trials);
    ptm_obs::gauge!("sim.workers").set(workers as i64);
    ptm_obs::debug!("sim.runner", "dispatching trials"; trials = trials, workers = workers);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    {
        // Hand each worker an interleaved set of trial indices; a shared
        // atomic counter would also work but static striping keeps the
        // code free of coordination entirely.
        let mut remaining: &mut [Option<T>] = &mut slots;
        let mut chunks: Vec<(usize, &mut [Option<T>])> = Vec::with_capacity(workers);
        let base = trials / workers;
        let extra = trials % workers;
        let mut start = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let (head, tail) = remaining.split_at_mut(len);
            chunks.push((start, head));
            remaining = tail;
            start += len;
        }
        crossbeam::thread::scope(|scope| {
            for (offset, chunk) in chunks {
                let timed = &timed;
                scope.spawn(move |_| {
                    // Thread utilization: total time workers spent inside
                    // trial bodies, comparable against the sim.run_trials
                    // span to compute effective parallelism.
                    // ptm-analyze: allow(determinism): wall-clock feeds only the sim.worker.busy_ns metric, never trial results
                    let busy_from = ptm_obs::metrics_enabled().then(Instant::now);
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(timed(offset + i));
                    }
                    if let Some(from) = busy_from {
                        let nanos = u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        ptm_obs::counter!("sim.worker.busy_ns").add(nanos);
                    }
                });
            }
        })
        .expect("worker thread panicked");
    }
    slots
        .into_iter()
        .map(|s| s.expect("every trial filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(17, 4, |i| i * 10);
        assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = run_trials(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u32> = run_trials(0, 8, |_| unreachable!("no trials"));
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_trials() {
        let out = run_trials(2, 16, |i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |i: usize| crate::trial_seed(99, &[i as u64]);
        let seq = run_trials(32, 1, work);
        let par = run_trials(32, 8, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = run_trials(1, 0, |i| i);
    }
}
