//! Builds traffic records from scenarios: the bridge between the workload
//! generators in `ptm-traffic` and the estimators in `ptm-core`.

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::{BitmapSize, SystemParams};
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_traffic::generate::{fill_transients, CommonFleet, P2pScenario, PointScenario};
use rand::Rng;

use crate::stats::mean;

/// Record sets for one point-to-point run.
#[derive(Debug, Clone)]
pub struct P2pRecords {
    /// Per-period records at `L`.
    pub records_l: Vec<TrafficRecord>,
    /// Per-period records at `L'`.
    pub records_lp: Vec<TrafficRecord>,
}

/// Bitmap size per the paper's rule (Eq. 2): the "expected traffic volume"
/// is the historical average — modelled as the mean of the scenario's
/// per-period volumes.
pub fn sizing(params: &SystemParams, volumes: &[u64]) -> BitmapSize {
    let avg = mean(&volumes.iter().map(|&v| v as f64).collect::<Vec<_>>());
    params.bitmap_size(avg)
}

/// How per-period record sizes are chosen for a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SizingPolicy {
    /// Eq. (2) applied per period with that period's expected volume — the
    /// paper's Fig. 3 scenario, where one location's records differ in size
    /// across periods. Kept as an ablation: cross-size replication
    /// correlations add a small positive bias to the point estimator.
    PerPeriod,
    /// Eq. (2) applied once with the campaign-average volume: all of a
    /// location's records share one size. Default — unbiased.
    #[default]
    CampaignMean,
}

/// Builds the `t` records of a single-location scenario.
///
/// Persistent vehicles run through the real encoding chain (their bit is
/// identical across periods *modulo each record's size*, which is the
/// signal the estimator extracts); transients use the documented
/// uniform-bit shortcut.
///
/// # Panics
///
/// Panics if any period volume is below the persistent core.
pub fn build_point_records<R: Rng + ?Sized>(
    scheme: &EncodingScheme,
    params: &SystemParams,
    scenario: &PointScenario,
    location: LocationId,
    rng: &mut R,
) -> Vec<TrafficRecord> {
    build_point_records_with(
        scheme,
        params,
        scenario,
        location,
        SizingPolicy::default(),
        rng,
    )
}

/// [`build_point_records`] with an explicit sizing policy.
///
/// # Panics
///
/// Panics if any period volume is below the persistent core.
pub fn build_point_records_with<R: Rng + ?Sized>(
    scheme: &EncodingScheme,
    params: &SystemParams,
    scenario: &PointScenario,
    location: LocationId,
    policy: SizingPolicy,
    rng: &mut R,
) -> Vec<TrafficRecord> {
    let campaign_size = sizing(params, &scenario.volumes);
    let fleet = CommonFleet::generate(rng, scenario.persistent, scheme.num_representatives());
    // Precompute the full-width indices once; reducing modulo each record's
    // size preserves the power-of-two consistency (Sec. II-D).
    let max_size = scenario
        .volumes
        .iter()
        .map(|&v| params.bitmap_size(v as f64))
        .max()
        .unwrap_or(campaign_size)
        .max(campaign_size);
    let wide_indices = fleet.indices_at(scheme, location, max_size.get());
    scenario
        .volumes
        .iter()
        .enumerate()
        .map(|(j, &volume)| {
            let m = match policy {
                SizingPolicy::PerPeriod => params.bitmap_size(volume as f64),
                SizingPolicy::CampaignMean => campaign_size,
            };
            let mut record = TrafficRecord::new(location, PeriodId::new(j as u32), m);
            for &idx in &wide_indices {
                record.set_reported_index(idx % m.get());
            }
            let transients = volume
                .checked_sub(scenario.persistent)
                .expect("period volume below persistent core");
            fill_transients(&mut record, transients, rng);
            record
        })
        .collect()
}

/// Builds the two record sets of a point-to-point scenario.
///
/// `lp_size_override` forces the `L'` bitmap size — used by the paper's
/// *same-size bitmaps* baseline (Table I last row), which sets `m' = m`
/// instead of sizing `L'` for its own volume.
///
/// # Panics
///
/// Panics if any period volume is below the persistent core.
pub fn build_p2p_records<R: Rng + ?Sized>(
    scheme: &EncodingScheme,
    params: &SystemParams,
    scenario: &P2pScenario,
    location_l: LocationId,
    location_lp: LocationId,
    lp_size_override: Option<BitmapSize>,
    rng: &mut R,
) -> P2pRecords {
    build_p2p_records_with(
        scheme,
        params,
        scenario,
        location_l,
        location_lp,
        lp_size_override,
        SizingPolicy::default(),
        rng,
    )
}

/// [`build_p2p_records`] with an explicit sizing policy.
///
/// # Panics
///
/// Panics if any period volume is below the persistent core.
#[allow(clippy::too_many_arguments)]
pub fn build_p2p_records_with<R: Rng + ?Sized>(
    scheme: &EncodingScheme,
    params: &SystemParams,
    scenario: &P2pScenario,
    location_l: LocationId,
    location_lp: LocationId,
    lp_size_override: Option<BitmapSize>,
    policy: SizingPolicy,
    rng: &mut R,
) -> P2pRecords {
    let size_of = |volumes: &[u64], j: usize, campaign: BitmapSize| match policy {
        SizingPolicy::PerPeriod => params.bitmap_size(volumes[j] as f64),
        SizingPolicy::CampaignMean => campaign,
    };
    let campaign_l = sizing(params, &scenario.volumes_l);
    let campaign_lp = lp_size_override.unwrap_or_else(|| sizing(params, &scenario.volumes_lp));
    let max_l = (0..scenario.num_periods())
        .map(|j| size_of(&scenario.volumes_l, j, campaign_l))
        .max()
        .expect("at least one period");
    let max_lp = if lp_size_override.is_some() {
        campaign_lp
    } else {
        (0..scenario.num_periods())
            .map(|j| size_of(&scenario.volumes_lp, j, campaign_lp))
            .max()
            .expect("at least one period")
    };
    let fleet = CommonFleet::generate(rng, scenario.persistent, scheme.num_representatives());
    let idx_l = fleet.indices_at(scheme, location_l, max_l.get());
    let idx_lp = fleet.indices_at(scheme, location_lp, max_lp.get());

    let t = scenario.num_periods();
    let mut records_l = Vec::with_capacity(t);
    let mut records_lp = Vec::with_capacity(t);
    for j in 0..t {
        let m_l = size_of(&scenario.volumes_l, j, campaign_l);
        let mut rl = TrafficRecord::new(location_l, PeriodId::new(j as u32), m_l);
        for &idx in &idx_l {
            rl.set_reported_index(idx % m_l.get());
        }
        fill_transients(&mut rl, scenario.transients_l(j), rng);
        records_l.push(rl);

        let m_lp = if lp_size_override.is_some() {
            campaign_lp
        } else {
            size_of(&scenario.volumes_lp, j, campaign_lp)
        };
        let mut rlp = TrafficRecord::new(location_lp, PeriodId::new(j as u32), m_lp);
        for &idx in &idx_lp {
            rlp.set_reported_index(idx % m_lp.get());
        }
        fill_transients(&mut rlp, scenario.transients_lp(j), rng);
        records_lp.push(rlp);
    }
    P2pRecords {
        records_l,
        records_lp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::point::PointEstimator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn sizing_uses_mean_volume() {
        let params = SystemParams::paper_default();
        // mean 6000 * f 2 = 12000 -> 16384.
        assert_eq!(sizing(&params, &[4000, 8000]).get(), 16_384);
        // Table I row: constant volume 213000 * 2 -> 524288.
        assert_eq!(sizing(&params, &[213_000; 5]).get(), 524_288);
    }

    #[test]
    fn point_records_have_scenario_shape() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let scheme = EncodingScheme::new(5, 3);
        let params = SystemParams::paper_default();
        let scenario = PointScenario {
            volumes: vec![3000, 4000, 5000],
            persistent: 500,
        };
        let records =
            build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);
        assert_eq!(records.len(), 3);
        // Default campaign-mean sizing: mean 4000 x f 2 = 8000 -> 8192.
        for (j, r) in records.iter().enumerate() {
            assert_eq!(r.period(), PeriodId::new(j as u32));
            assert_eq!(r.location(), LocationId::new(1));
            assert_eq!(r.len(), 8192, "period {j}");
            // Ones are at most the vehicle count (collisions only reduce).
            assert!(r.bitmap().count_ones() <= scenario.volumes[j] as usize);
            // And at least half of it at this load (sanity).
            assert!(r.bitmap().count_ones() >= scenario.volumes[j] as usize / 2);
        }
    }

    #[test]
    fn per_period_policy_varies_sizes() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let scheme = EncodingScheme::new(5, 3);
        let params = SystemParams::paper_default();
        let scenario = PointScenario {
            volumes: vec![3000, 4000, 5000],
            persistent: 500,
        };
        let records = build_point_records_with(
            &scheme,
            &params,
            &scenario,
            LocationId::new(1),
            SizingPolicy::PerPeriod,
            &mut rng,
        );
        assert_eq!(
            records.iter().map(|r| r.len()).collect::<Vec<_>>(),
            vec![8192, 8192, 16384]
        );
    }

    #[test]
    fn per_period_commons_consistent_across_sizes() {
        // A common vehicle's bit in a small record must be its large-record
        // bit reduced modulo the smaller size (what the AND-join relies on).
        let mut rng = ChaCha12Rng::seed_from_u64(10);
        let scheme = EncodingScheme::new(6, 3);
        let params = SystemParams::paper_default();
        let scenario = PointScenario {
            volumes: vec![3000, 9000],
            persistent: 50,
        };
        let records = build_point_records_with(
            &scheme,
            &params,
            &scenario,
            LocationId::new(3),
            SizingPolicy::PerPeriod,
            &mut rng,
        );
        let (small, large) = (&records[0], &records[1]);
        assert!(small.len() < large.len());
        // Every bit of the small record's expansion that came from a common
        // vehicle is covered: AND of expanded small with large keeps >= 50
        // ones (the commons), minus collisions.
        let expanded = small.bitmap().expand_to(large.len()).expect("pow2");
        let mut joined = expanded.clone();
        joined.and_assign(large.bitmap()).expect("same size");
        assert!(joined.count_ones() >= 40, "commons must survive the join");
    }

    #[test]
    fn point_records_estimate_close_to_truth() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let scheme = EncodingScheme::new(6, 3);
        let params = SystemParams::paper_default();
        let scenario = PointScenario {
            volumes: vec![8000; 5],
            persistent: 2000,
        };
        let records =
            build_point_records(&scheme, &params, &scenario, LocationId::new(2), &mut rng);
        let est = PointEstimator::new().estimate(&records).expect("estimate");
        assert!((est - 2000.0).abs() / 2000.0 < 0.1, "estimate {est}");
    }

    #[test]
    fn p2p_records_respect_override() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let scheme = EncodingScheme::new(7, 3);
        let params = SystemParams::paper_default();
        let scenario = P2pScenario {
            volumes_l: vec![4000; 3],
            volumes_lp: vec![16_000; 3],
            persistent: 300,
        };
        let natural = build_p2p_records(
            &scheme,
            &params,
            &scenario,
            LocationId::new(1),
            LocationId::new(2),
            None,
            &mut rng,
        );
        assert_eq!(natural.records_l[0].len(), 8192);
        assert_eq!(natural.records_lp[0].len(), 32_768);

        let same_size = build_p2p_records(
            &scheme,
            &params,
            &scenario,
            LocationId::new(1),
            LocationId::new(2),
            Some(BitmapSize::new(8192).expect("pow2")),
            &mut rng,
        );
        assert_eq!(same_size.records_lp[0].len(), 8192);
    }

    #[test]
    #[should_panic(expected = "below persistent core")]
    fn oversized_core_panics() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let scheme = EncodingScheme::new(8, 3);
        let params = SystemParams::paper_default();
        let scenario = PointScenario {
            volumes: vec![100],
            persistent: 500,
        };
        let _ = build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);
    }
}
