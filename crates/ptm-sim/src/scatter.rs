//! Reproduces **Fig. 5** and **Fig. 6**: actual-vs-estimated scatter plots
//! for point persistent traffic (left panels) and point-to-point persistent
//! traffic (right panels), at `t = 5` with `f = 2` (Fig. 5) and `f = 3`
//! (Fig. 6).
//!
//! Each plotted point is one measurement: x = the true persistent volume,
//! y = the estimate. Accuracy shows as clustering around the `y = x` line;
//! the paper's claim is that the f = 3 cloud hugs the line visibly tighter
//! than the f = 2 cloud.

use crate::runner::run_trials;
use crate::trial_seed;
use crate::workload::{build_p2p_records, build_point_records};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::SystemParams;
use ptm_core::point::PointEstimator;
use ptm_traffic::generate::{P2pScenario, PointScenario};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

/// Configuration for one figure (both panels).
#[derive(Debug, Clone, Serialize)]
pub struct ScatterConfig {
    /// Number of measurement periods (paper: 5).
    pub t: usize,
    /// System parameters; Fig. 5 uses f = 2, Fig. 6 uses f = 3.
    pub params: SystemParams,
    /// Persistent-core fractions; each contributes `runs_per_fraction`
    /// scatter points.
    pub fractions: Vec<f64>,
    /// Measurements per fraction.
    pub runs_per_fraction: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl ScatterConfig {
    /// The paper's figure at the given load factor (2.0 → Fig. 5,
    /// 3.0 → Fig. 6).
    pub fn paper(load_factor: f64) -> Self {
        Self {
            t: 5,
            params: SystemParams::new(load_factor, 3),
            fractions: crate::fig4::paper_fractions(),
            runs_per_fraction: 1,
            seed: 5656,
            threads: crate::runner::default_threads(),
        }
    }
}

/// Both panels of one figure.
#[derive(Debug, Clone, Serialize)]
pub struct ScatterResult {
    /// Configuration echo.
    pub config: ScatterConfig,
    /// `(actual, estimated)` for point persistent traffic.
    pub point: Vec<(f64, f64)>,
    /// `(actual, estimated)` for point-to-point persistent traffic.
    pub p2p: Vec<(f64, f64)>,
}

impl ScatterResult {
    /// Root-mean-square relative deviation from the `y = x` line.
    ///
    /// # Panics
    ///
    /// Panics if the panel is empty.
    pub fn rms_relative_deviation(points: &[(f64, f64)]) -> f64 {
        assert!(!points.is_empty(), "empty panel");
        let sum: f64 = points
            .iter()
            .map(|&(actual, est)| {
                let rel = (est - actual) / actual.max(1.0);
                rel * rel
            })
            .sum();
        (sum / points.len() as f64).sqrt()
    }
}

/// Runs both panels.
pub fn run(config: &ScatterConfig) -> ScatterResult {
    let total = config.fractions.len() * config.runs_per_fraction;
    let measurements = run_trials(total, config.threads, |idx| {
        let fraction = config.fractions[idx / config.runs_per_fraction];
        let seed = trial_seed(
            config.seed,
            &[(config.params.load_factor() * 10.0) as u64, idx as u64],
        );
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let scheme = EncodingScheme::new(seed ^ 0x5CA7, config.params.num_representatives());

        // Left panel: point persistent.
        let point_scenario = PointScenario::synthetic(&mut rng, config.t, fraction);
        let records = build_point_records(
            &scheme,
            &config.params,
            &point_scenario,
            LocationId::new(1),
            &mut rng,
        );
        let point_est = PointEstimator::new()
            .estimate(&records)
            .expect("synthetic records never saturate");
        let point_pair = (point_scenario.persistent as f64, point_est);

        // Right panel: point-to-point persistent.
        let p2p_scenario = P2pScenario::synthetic(&mut rng, config.t, fraction);
        let p2p_records = build_p2p_records(
            &scheme,
            &config.params,
            &p2p_scenario,
            LocationId::new(1),
            LocationId::new(2),
            None,
            &mut rng,
        );
        let p2p_est = PointToPointEstimator::new(config.params.num_representatives())
            .estimate(&p2p_records.records_l, &p2p_records.records_lp)
            .expect("synthetic records never saturate");
        let p2p_pair = (p2p_scenario.persistent as f64, p2p_est);

        (point_pair, p2p_pair)
    });
    ScatterResult {
        config: config.clone(),
        point: measurements.iter().map(|m| m.0).collect(),
        p2p: measurements.iter().map(|m| m.1).collect(),
    }
}

/// Renders both panels as ASCII scatters with the `y = x` reference.
pub fn render(result: &ScatterResult) -> String {
    let f = result.config.params.load_factor();
    let t = result.config.t;
    let left = ptm_report::Plot::new(
        format!("point persistent traffic (t = {t}, f = {f})"),
        "actual persistent traffic volume",
        "estimated volume",
    )
    .with_diagonal()
    .series(ptm_report::Series::new(
        "measurements",
        'o',
        result.point.clone(),
    ));
    let right = ptm_report::Plot::new(
        format!("point-to-point persistent traffic (t = {t}, f = {f})"),
        "actual persistent traffic volume",
        "estimated volume",
    )
    .with_diagonal()
    .series(ptm_report::Series::new(
        "measurements",
        'o',
        result.p2p.clone(),
    ));
    format!("{}\n{}", left.render(), right.render())
}

/// CSV form: `panel,actual,estimated`.
pub fn to_csv(result: &ScatterResult) -> String {
    let mut w = ptm_report::csv::CsvWriter::new();
    w.write_row(["panel", "actual", "estimated"]);
    for &(a, e) in &result.point {
        w.write_row(["point".to_owned(), a.to_string(), e.to_string()]);
    }
    for &(a, e) in &result.p2p {
        w.write_row(["p2p".to_owned(), a.to_string(), e.to_string()]);
    }
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(load_factor: f64) -> ScatterConfig {
        ScatterConfig {
            t: 5,
            params: SystemParams::new(load_factor, 3),
            fractions: vec![0.05, 0.15, 0.3, 0.45],
            runs_per_fraction: 3,
            seed: 2,
            threads: 1,
        }
    }

    #[test]
    fn points_cluster_on_diagonal() {
        let result = run(&small(2.0));
        assert_eq!(result.point.len(), 12);
        assert_eq!(result.p2p.len(), 12);
        let point_dev = ScatterResult::rms_relative_deviation(&result.point);
        let p2p_dev = ScatterResult::rms_relative_deviation(&result.p2p);
        assert!(point_dev < 0.25, "point panel deviation {point_dev}");
        assert!(p2p_dev < 0.35, "p2p panel deviation {p2p_dev}");
    }

    #[test]
    fn higher_load_factor_is_tighter() {
        // Fig. 5 vs Fig. 6: f = 3 clusters tighter than f = 2. Use the
        // point panel, aggregated over the sweep, with shared seeds.
        let f2 = run(&small(2.0));
        let f3 = run(&small(3.0));
        let d2 = ScatterResult::rms_relative_deviation(&f2.point);
        let d3 = ScatterResult::rms_relative_deviation(&f3.point);
        assert!(d3 < d2, "f=3 deviation {d3} should beat f=2 deviation {d2}");
    }

    #[test]
    fn render_and_csv() {
        let result = run(&ScatterConfig {
            fractions: vec![0.2],
            runs_per_fraction: 2,
            ..small(2.0)
        });
        let text = render(&result);
        assert!(text.contains("point persistent traffic"));
        assert!(text.contains("point-to-point persistent traffic"));
        assert!(text.contains("y = x"));
        let csv = to_csv(&result);
        assert_eq!(csv.lines().count(), 1 + 2 + 2);
    }
}
