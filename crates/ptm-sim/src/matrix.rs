//! City-wide query sweep: point-to-point persistent traffic for **every**
//! Sioux Falls node pair with trip-table demand.
//!
//! Beyond the paper's 8 hand-picked pairs: demonstrates that one campaign
//! of daily bitmaps (24 RSUs × t periods) supports the full O(n²) query
//! surface, and characterises how estimation error scales with the true
//! pair volume across all 552 ordered pairs.

use crate::runner::run_trials;
use crate::workload::build_p2p_records;
use crate::{stats, trial_seed};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::SystemParams;
use ptm_traffic::generate::P2pScenario;
use ptm_traffic::network::NodeId;
use ptm_traffic::sioux_falls;
use serde::Serialize;

/// Configuration of the matrix sweep.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixConfig {
    /// Measurement periods per pair.
    pub t: usize,
    /// Trip-table scale factor (1 = raw LeBlanc table, 5 = paper scale).
    pub scale: u64,
    /// System parameters.
    pub params: SystemParams,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            t: 5,
            scale: 1,
            params: SystemParams::paper_default(),
            seed: 24,
            threads: crate::runner::default_threads(),
        }
    }
}

/// One estimated pair.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MatrixCell {
    /// 1-based node labels.
    pub from: usize,
    /// 1-based node labels.
    pub to: usize,
    /// True pair volume (`n''`).
    pub truth: u64,
    /// Estimated persistent volume.
    pub estimate: f64,
    /// Relative error.
    pub rel_err: f64,
}

/// The sweep result.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixResult {
    /// Configuration echo.
    pub config: MatrixConfig,
    /// Every unordered pair with nonzero demand, by (from, to) with
    /// `from < to`.
    pub cells: Vec<MatrixCell>,
}

impl MatrixResult {
    /// Mean relative error across all pairs.
    pub fn mean_rel_err(&self) -> f64 {
        crate::stats::mean(&self.cells.iter().map(|c| c.rel_err).collect::<Vec<_>>())
    }

    /// Worst relative error.
    pub fn worst(&self) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .max_by(|a, b| a.rel_err.partial_cmp(&b.rel_err).expect("finite"))
    }
}

/// Runs the sweep.
pub fn run(config: &MatrixConfig) -> MatrixResult {
    let table = sioux_falls::trip_table().scaled(config.scale);
    let n = table.num_zones();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .filter(|&(a, b)| table.pair_volume(NodeId::new(a), NodeId::new(b)) > 0)
        .collect();

    let cells = run_trials(pairs.len(), config.threads, |idx| {
        let (a, b) = pairs[idx];
        let seed = trial_seed(config.seed, &[a as u64, b as u64]);
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha12Rng::seed_from_u64(seed)
        };
        let scheme = EncodingScheme::new(seed ^ 0x247, config.params.num_representatives());
        let scenario =
            P2pScenario::from_trip_table(&table, NodeId::new(a), NodeId::new(b), config.t);
        let records = build_p2p_records(
            &scheme,
            &config.params,
            &scenario,
            LocationId::new(a as u64 + 1),
            LocationId::new(b as u64 + 1),
            None,
            &mut rng,
        );
        let estimate = PointToPointEstimator::new(config.params.num_representatives())
            .estimate(&records.records_l, &records.records_lp)
            .expect("trip-table records never saturate at f = 2");
        MatrixCell {
            from: a + 1,
            to: b + 1,
            truth: scenario.persistent,
            estimate,
            rel_err: stats::relative_error(scenario.persistent as f64, estimate),
        }
    });
    MatrixResult {
        config: config.clone(),
        cells,
    }
}

/// Renders a summary: aggregate accuracy plus the heaviest corridors.
pub fn render(result: &MatrixResult) -> String {
    let mut out = format!(
        "city-wide p2p persistent sweep: {} node pairs, t = {}, scale x{}\n",
        result.cells.len(),
        result.config.t,
        result.config.scale
    );
    out.push_str(&format!(
        "mean relative error: {:.4}\n",
        result.mean_rel_err()
    ));
    if let Some(worst) = result.worst() {
        out.push_str(&format!(
            "worst pair: {} <-> {} (n'' = {}), relative error {:.4}\n\n",
            worst.from, worst.to, worst.truth, worst.rel_err
        ));
    }
    let mut heaviest: Vec<&MatrixCell> = result.cells.iter().collect();
    heaviest.sort_by_key(|c| std::cmp::Reverse(c.truth));
    let mut table = ptm_report::TextTable::new(vec![
        "corridor".into(),
        "true n''".into(),
        "estimate".into(),
        "rel err".into(),
    ]);
    for cell in heaviest.iter().take(10) {
        table.add_row(vec![
            format!("{} <-> {}", cell.from, cell.to),
            cell.truth.to_string(),
            format!("{:.0}", cell.estimate),
            format!("{:.4}", cell.rel_err),
        ]);
    }
    out.push_str("ten heaviest corridors:\n");
    out.push_str(&table.render());
    out
}

/// CSV form: `from,to,truth,estimate,rel_err`.
pub fn to_csv(result: &MatrixResult) -> String {
    let mut w = ptm_report::csv::CsvWriter::new();
    w.write_row(["from", "to", "truth", "estimate", "rel_err"]);
    for c in &result.cells {
        w.write_row([
            c.from.to_string(),
            c.to.to_string(),
            c.truth.to_string(),
            c.estimate.to_string(),
            c.rel_err.to_string(),
        ]);
    }
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_demand_pairs() {
        let config = MatrixConfig {
            t: 3,
            threads: 1,
            ..MatrixConfig::default()
        };
        let result = run(&config);
        // Sioux Falls has demand between almost every pair; at minimum the
        // known heavy corridors must be present.
        assert!(result.cells.len() > 200, "{} pairs", result.cells.len());
        assert!(result
            .cells
            .iter()
            .any(|c| c.from == 10 && c.to == 16 && c.truth == 8_800));
        // Aggregate accuracy: heavy pairs dominate; mean error stays small.
        assert!(
            result.mean_rel_err() < 0.2,
            "mean err {}",
            result.mean_rel_err()
        );
    }

    #[test]
    fn heavy_corridors_are_accurate() {
        let config = MatrixConfig {
            t: 3,
            threads: 1,
            ..MatrixConfig::default()
        };
        let result = run(&config);
        for cell in result.cells.iter().filter(|c| c.truth >= 5_000) {
            assert!(
                cell.rel_err < 0.1,
                "{} <-> {} (n''={}): err {}",
                cell.from,
                cell.to,
                cell.truth,
                cell.rel_err
            );
        }
    }

    #[test]
    fn render_and_csv_shapes() {
        let config = MatrixConfig {
            t: 3,
            threads: 1,
            ..MatrixConfig::default()
        };
        let result = run(&config);
        let text = render(&result);
        assert!(text.contains("heaviest corridors"));
        assert!(text.contains("mean relative error"));
        let csv = to_csv(&result);
        assert_eq!(csv.lines().count(), result.cells.len() + 1);
    }
}
