//! ASCII histograms for error distributions.

/// A binned histogram over `f64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    overflow: usize,
    underflow: usize,
    total: usize,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "bad range [{lo}, {hi})"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Builds a histogram spanning the sample range.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-finite sample.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "histogram of an empty sample");
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo.is_finite() && hi.is_finite(), "non-finite samples");
        // Widen degenerate ranges so every value lands in a bin.
        let (lo, hi) = if hi > lo {
            (lo, hi + (hi - lo) * 1e-9)
        } else {
            (lo - 0.5, hi + 0.5)
        };
        let mut h = Self::new(lo, hi, bins);
        for &v in samples {
            h.add(v);
        }
        h
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((value - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total samples added.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Samples outside the range.
    pub fn outliers(&self) -> usize {
        self.underflow + self.overflow
    }

    /// Renders horizontal bars, one line per bin.
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = String::new();
        for (i, &count) in self.counts.iter().enumerate() {
            let bin_lo = self.lo + i as f64 * width;
            let bar = "#".repeat(count * max_width / peak);
            out.push_str(&format!("[{bin_lo:>9.4}) {bar} {count}\n"));
        }
        if self.outliers() > 0 {
            out.push_str(&format!("(outliers: {})\n", self.outliers()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_counts() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for v in [0.1, 0.1, 0.3, 0.6, 0.9, 0.99] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.outliers(), 0);
        let text = h.render(10);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("2"));
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(2.0);
        h.add(1.0); // hi is exclusive
        assert_eq!(h.outliers(), 3);
        assert!(h.render(10).contains("outliers: 3"));
    }

    #[test]
    fn from_samples_spans_range() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0, 4.0], 3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn constant_samples() {
        let h = Histogram::from_samples(&[5.0; 10], 3);
        assert_eq!(h.total(), 10);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Histogram::from_samples(&[], 3);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }
}
