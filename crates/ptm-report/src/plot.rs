//! ASCII scatter/line plots.
//!
//! Enough fidelity to eyeball the paper's figures in a terminal: multiple
//! series with distinct glyphs, axis ranges and labels, and an optional
//! `y = x` reference diagonal (Figs. 5–6 cluster their points around it).

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph.
    pub glyph: char,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            glyph,
            points,
        }
    }
}

/// An ASCII plot under construction.
#[derive(Debug, Clone)]
pub struct Plot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
    diagonal: bool,
}

impl Plot {
    /// Creates a plot with the given title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 64,
            height: 20,
            series: Vec::new(),
            diagonal: false,
        }
    }

    /// Sets the character-grid size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 8.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "plot must be at least 8x8");
        self.width = width;
        self.height = height;
        self
    }

    /// Adds a data series.
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Draws the `y = x` reference line (for actual-vs-estimated scatters).
    pub fn with_diagonal(mut self) -> Self {
        self.diagonal = true;
        self
    }

    /// Renders the plot.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = min_max(all.iter().map(|p| p.0));
        let (mut y_min, mut y_max) = min_max(all.iter().map(|p| p.1));
        if self.diagonal {
            // Make the diagonal meaningful by sharing the ranges.
            let lo = x_min.min(y_min);
            let hi = x_max.max(y_max);
            x_min = lo;
            x_max = hi;
            y_min = lo;
            y_max = hi;
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        let to_cell = |x: f64, y: f64| -> (usize, usize) {
            let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
            (
                cx.min(self.width - 1),
                self.height - 1 - cy.min(self.height - 1),
            )
        };
        if self.diagonal {
            for i in 0..self.width.max(self.height) * 2 {
                let t = i as f64 / (self.width.max(self.height) * 2 - 1) as f64;
                let v = x_min + t * (x_max - x_min);
                let (cx, cy) = to_cell(v, v);
                grid[cy][cx] = '·';
            }
        }
        for series in &self.series {
            for &(x, y) in &series.points {
                if x.is_finite() && y.is_finite() {
                    let (cx, cy) = to_cell(x, y);
                    grid[cy][cx] = series.glyph;
                }
            }
        }

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&format!(
            "{} (vertical), range [{:.4}, {:.4}]\n",
            self.y_label, y_min, y_max
        ));
        for row in &grid {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push('\n');
        out.push_str(&format!(
            "{} (horizontal), range [{:.4}, {:.4}]\n",
            self.x_label, x_min, x_max
        ));
        for series in &self.series {
            out.push_str(&format!("  {} {}\n", series.glyph, series.label));
        }
        if self.diagonal {
            out.push_str("  · y = x\n");
        }
        out
    }
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points() {
        let plot = Plot::new("demo", "x", "y").size(20, 10).series(Series::new(
            "data",
            '*',
            vec![(0.0, 0.0), (1.0, 1.0)],
        ));
        let text = plot.render();
        assert!(text.contains('*'));
        assert!(text.contains("demo"));
        assert!(text.contains("data"));
    }

    #[test]
    fn empty_plot_degrades_gracefully() {
        let plot = Plot::new("empty", "x", "y");
        assert!(plot.render().contains("no data"));
    }

    #[test]
    fn diagonal_reference() {
        let plot = Plot::new("scatter", "actual", "estimated")
            .size(20, 10)
            .with_diagonal()
            .series(Series::new("points", 'o', vec![(10.0, 11.0), (50.0, 48.0)]));
        let text = plot.render();
        assert!(text.contains('·'));
        assert!(text.contains("y = x"));
    }

    #[test]
    fn multiple_series_distinct_glyphs() {
        let plot = Plot::new("two", "x", "y")
            .size(30, 10)
            .series(Series::new("a", 'a', vec![(0.0, 0.0)]))
            .series(Series::new("b", 'b', vec![(1.0, 1.0)]));
        let text = plot.render();
        assert!(text.contains('a') && text.contains('b'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let plot = Plot::new("flat", "x", "y").size(10, 8).series(Series::new(
            "c",
            'c',
            vec![(5.0, 2.0), (5.0, 2.0)],
        ));
        let text = plot.render();
        assert!(text.contains('c'));
    }

    #[test]
    fn non_finite_points_skipped() {
        let plot = Plot::new("nan", "x", "y").size(10, 8).series(Series::new(
            "n",
            'n',
            vec![(f64::NAN, 1.0), (1.0, 2.0)],
        ));
        let text = plot.render();
        assert!(text.contains('n'));
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn tiny_plot_rejected() {
        let _ = Plot::new("t", "x", "y").size(2, 2);
    }
}
