//! Aligned monospace tables.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
///
/// # Example
///
/// ```
/// use ptm_report::TextTable;
///
/// let mut table = TextTable::new(vec!["L".into(), "n".into()]);
/// table.add_row(vec!["1".into(), "213000".into()]);
/// let text = table.render();
/// assert!(text.contains("213000"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Creates a table with the given column headers (all right-aligned
    /// except the first column).
    pub fn new(header: Vec<String>) -> Self {
        let mut aligns = vec![Align::Right; header.len()];
        if let Some(first) = aligns.first_mut() {
            *first = Align::Left;
        }
        Self {
            header,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides the per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the header length.
    pub fn set_aligns(&mut self, aligns: Vec<Align>) -> &mut Self {
        assert_eq!(aligns.len(), self.header.len(), "one alignment per column");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header length.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(row.len(), self.header.len(), "one cell per column");
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt_f64(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["b".into(), "12345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: "1" ends at same column as "12345".
        let col_end = lines[3].len();
        assert_eq!(lines[2].len(), col_end);
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "one cell per column")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn custom_alignment() {
        let mut t = TextTable::new(vec!["x".into(), "y".into()]);
        t.set_aligns(vec![Align::Right, Align::Left]);
        t.add_row(vec!["10".into(), "left".into()]);
        let text = t.render();
        assert!(text.contains(" x"), "header right-aligned with data");
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f64(0.123456, 4), "0.1235");
        assert_eq!(fmt_f64(2.0, 1), "2.0");
    }

    #[test]
    fn num_rows() {
        let mut t = TextTable::new(vec!["a".into()]);
        assert_eq!(t.num_rows(), 0);
        t.add_row(vec!["1".into()]);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn unicode_width_by_chars() {
        let mut t = TextTable::new(vec!["α".into(), "β".into()]);
        t.add_row(vec!["γγ".into(), "δ".into()]);
        let text = t.render();
        assert!(text.contains("γγ"));
    }
}
