//! Result rendering: text tables, CSV emitters, and ASCII plots.
//!
//! The paper reports results as two tables and three two-panel figures.
//! This crate renders the regenerated data in three interchangeable forms:
//!
//! * [`table`] — aligned monospace tables for terminal output;
//! * [`csv`] — CSV strings for external plotting tools;
//! * [`plot`] — ASCII scatter/line plots so the *shape* of every figure is
//!   visible directly in the terminal (clustering around `y = x`, crossover
//!   points, relative ordering of curves).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod histogram;
pub mod plot;
pub mod table;

pub use histogram::Histogram;
pub use plot::{Plot, Series};
pub use table::TextTable;
