//! Minimal CSV emission (RFC 4180 quoting) for handing experiment data to
//! external plotting tools.

/// Builds a CSV document in memory.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    buffer: String,
    columns: Option<usize>,
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one row; the first row fixes the column count.
    ///
    /// # Panics
    ///
    /// Panics if a later row has a different number of fields.
    pub fn write_row<I, S>(&mut self, fields: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut count = 0;
        let mut first = true;
        for field in fields {
            if !first {
                self.buffer.push(',');
            }
            first = false;
            self.buffer.push_str(&escape(field.as_ref()));
            count += 1;
        }
        match self.columns {
            None => self.columns = Some(count),
            Some(expected) => {
                assert_eq!(
                    count, expected,
                    "row has {count} fields, expected {expected}"
                )
            }
        }
        self.buffer.push('\n');
        self
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.buffer
    }

    /// Consumes the writer, returning the document.
    pub fn into_string(self) -> String {
        self.buffer
    }
}

/// RFC 4180 field escaping.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// One-shot: serializes `(x, y)` pairs with a header.
pub fn xy_csv(header: (&str, &str), points: &[(f64, f64)]) -> String {
    let mut w = CsvWriter::new();
    w.write_row([header.0, header.1]);
    for &(x, y) in points {
        w.write_row([x.to_string(), y.to_string()]);
    }
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut w = CsvWriter::new();
        w.write_row(["a", "b"]).write_row(["1", "2"]);
        assert_eq!(w.as_str(), "a,b\n1,2\n");
    }

    #[test]
    fn quoting() {
        let mut w = CsvWriter::new();
        w.write_row(["has,comma", "has\"quote", "has\nnewline"]);
        assert_eq!(
            w.as_str(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n"
        );
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn ragged_rows_panic() {
        let mut w = CsvWriter::new();
        w.write_row(["a", "b"]);
        w.write_row(["only"]);
    }

    #[test]
    fn xy_helper() {
        let csv = xy_csv(("actual", "estimated"), &[(1.0, 1.5), (2.0, 2.25)]);
        assert_eq!(csv, "actual,estimated\n1,1.5\n2,2.25\n");
    }

    #[test]
    fn into_string() {
        let mut w = CsvWriter::new();
        w.write_row(["x"]);
        assert_eq!(w.into_string(), "x\n");
    }
}
