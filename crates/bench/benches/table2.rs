//! Regenerates **Table II** (the privacy grid) and benchmarks the analytic
//! evaluation and the Monte-Carlo cross-check.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_bench::print_artifact;
use ptm_core::privacy;
use ptm_sim::table2::{self, Table2Config};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_table2(c: &mut Criterion) {
    let result = table2::run(&Table2Config::default());
    print_artifact("Table II", &table2::render(&result));

    let mut group = c.benchmark_group("table2");
    group.bench_function("analytic_grid_28_cells", |b| {
        b.iter(|| privacy::privacy_table(&[1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0], &[2, 3, 4, 5]))
    });
    group.sample_size(10);
    group.bench_function("monte_carlo_cell_1000_trials", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        b.iter(|| privacy::simulate_noise_information(&mut rng, 2_000, 4_096, 3, 1_000))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
