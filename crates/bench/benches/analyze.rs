//! Analyzer self-benchmark: the linter runs inside `cargo test`
//! (`self_check`) and on every CI run, so its own cost is a tracked
//! number. `scripts/bench.sh` distills these into `BENCH_10.json`.
//!
//! Three pieces are timed separately over this repository's own source
//! tree, because they scale differently: `workspace_load` is I/O plus
//! lexing (linear in bytes), `full_check` is every rule over an
//! already-loaded workspace (linear in tokens, with the call-graph
//! fixpoint on top), and `lock_analysis` isolates the structural layers —
//! call-graph construction plus lock-site/may-acquire analysis — that the
//! concurrency rules added. The group declares files-per-iteration
//! throughput, and `bench.sh` records the scanned file count next to the
//! medians, so files/sec is `files * 1e9 / median_ns`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptm_analyze::callgraph::CallGraph;
use ptm_analyze::rules::SERVER_CRATES;
use ptm_analyze::workspace::Workspace;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn bench_analyze(c: &mut Criterion) {
    let root = repo_root();
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace discovery looks broken: only {} files found",
        ws.files.len()
    );
    let files = ws.files.len() as u64;
    // Same line shape the criterion stub prints, so `bench.sh`'s awk pass
    // picks the count up alongside the medians (files/sec = count * 1e9
    // / median_ns).
    println!("bench: analyze/files_scanned count {files}");

    let mut group = c.benchmark_group("analyze");
    group.throughput(Throughput::Elements(files));
    group.bench_function("workspace_load", |b| {
        b.iter(|| Workspace::load(&root).expect("workspace loads").files.len())
    });
    group.bench_function("full_check", |b| {
        b.iter(|| ptm_analyze::run(&ws).files_scanned)
    });
    group.bench_function("lock_analysis", |b| {
        b.iter(|| {
            let graph = CallGraph::build(&ws, SERVER_CRATES);
            ptm_analyze::locks::analyze(&ws, &graph).sites.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
