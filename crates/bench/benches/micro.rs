//! Micro-benchmarks of the kernels everything else is built on: bitmap
//! operations, vehicle encoding, joins, the crypto substrate, and the
//! event-driven V2I protocol.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ptm_core::bitmap::Bitmap;
use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::join::and_join;
use ptm_core::params::BitmapSize;
use ptm_core::record::PeriodId;
use ptm_crypto::hmac::hmac_sha256;
use ptm_crypto::{KeyPair, Sha256, SipHash24};
use ptm_net::{SimConfig, SimDuration, V2iSimulator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap");
    let m = 1 << 20;
    group.throughput(Throughput::Elements(m as u64));

    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let mut a = Bitmap::new(m);
    let mut b = Bitmap::new(m);
    for _ in 0..m / 2 {
        a.set(rng.gen_range(0..m));
        b.set(rng.gen_range(0..m));
    }

    group.bench_function("count_ones_1M", |bch| bch.iter(|| a.count_ones()));
    group.bench_function("and_assign_1M", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| x.and_assign(&b).expect("same size"),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("expand_64k_to_1M", |bch| {
        let small = {
            let mut s = Bitmap::new(1 << 16);
            for _ in 0..(1 << 15) {
                s.set(rng.gen_range(0..1 << 16));
            }
            s
        };
        bch.iter(|| small.expand_to(m).expect("power of two"))
    });
    group.bench_function("and_join_10_mixed_sizes", |bch| {
        let maps: Vec<Bitmap> = (0..10)
            .map(|i| {
                let len = 1 << (16 + (i % 3));
                let mut bmp = Bitmap::new(len);
                for _ in 0..len / 2 {
                    bmp.set(rng.gen_range(0..len));
                }
                bmp
            })
            .collect();
        bch.iter(|| and_join(maps.iter()).expect("powers of two"))
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    let scheme = EncodingScheme::new(9, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(2);
    let vehicles: Vec<VehicleSecrets> = (0..10_000)
        .map(|_| VehicleSecrets::generate(&mut rng, 3))
        .collect();
    let location = LocationId::new(5);

    group.throughput(Throughput::Elements(vehicles.len() as u64));
    group.bench_function("encode_10k_vehicles", |b| {
        b.iter(|| {
            vehicles
                .iter()
                .map(|v| scheme.encode_index(v, location, 1 << 16))
                .fold(0usize, |acc, i| acc ^ i)
        })
    });
    group.bench_function("generate_10k_vehicles", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        b.iter(|| {
            (0..10_000)
                .map(|_| VehicleSecrets::generate(&mut rng, 3))
                .count()
        })
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xABu8; 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_1k", |b| b.iter(|| Sha256::digest(&data)));
    group.bench_function("hmac_sha256_1k", |b| b.iter(|| hmac_sha256(b"key", &data)));
    let sip = SipHash24::new(1, 2);
    group.bench_function("siphash_1k", |b| b.iter(|| sip.hash(&data)));
    group.bench_function("siphash_8b", |b| b.iter(|| sip.hash_u64(0xDEADBEEF)));
    group.finish();

    let mut group = c.benchmark_group("signatures");
    let pair = KeyPair::from_seed(1);
    let sig = pair.sign(b"beacon payload");
    group.bench_function("schnorr_sign", |b| b.iter(|| pair.sign(b"beacon payload")));
    group.bench_function("schnorr_verify", |b| {
        b.iter(|| {
            pair.public()
                .verify(b"beacon payload", &sig)
                .expect("valid")
        })
    });
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    use ptm_store::crc32::crc32;
    let mut group = c.benchmark_group("storage");
    let payload = vec![0xA5u8; 128 * 1024];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("crc32_128k", |b| b.iter(|| crc32(&payload)));

    let scheme = EncodingScheme::new(3, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(12);
    let mut record = ptm_core::record::TrafficRecord::new(
        LocationId::new(1),
        PeriodId::new(0),
        BitmapSize::new(1 << 20).expect("pow2"),
    );
    for _ in 0..(1 << 19) {
        let v = VehicleSecrets::generate(&mut rng, 3);
        record.encode(&scheme, &v);
    }
    group.bench_function("encode_record_1M_bits", |b| {
        b.iter(|| ptm_store::codec::encode_record(&record))
    });
    let bytes = ptm_store::codec::encode_record(&record);
    group.bench_function("decode_record_1M_bits", |b| {
        b.iter(|| ptm_store::codec::decode_record(&bytes).expect("valid"))
    });

    // The archive append path with its permanent (disabled) fault hooks:
    // four small records buffered and committed with one flush.
    let small_records: Vec<ptm_core::record::TrafficRecord> = (0..4)
        .map(|p| {
            let mut r = ptm_core::record::TrafficRecord::new(
                LocationId::new(2),
                PeriodId::new(p),
                BitmapSize::new(4096).expect("pow2"),
            );
            for _ in 0..500 {
                let v = VehicleSecrets::generate(&mut rng, 3);
                r.encode(&scheme, &v);
            }
            r
        })
        .collect();
    let bench_path = std::env::temp_dir().join(format!("ptm-bench-{}.ptma", std::process::id()));
    group.bench_function("archive_append_commit_4_records", |b| {
        b.iter_batched(
            || {
                let _ = std::fs::remove_file(&bench_path);
                ptm_store::Archive::create(&bench_path).expect("create")
            },
            |mut archive| {
                archive.append_all(small_records.iter()).expect("append");
                archive
            },
            BatchSize::PerIteration,
        )
    });
    let _ = std::fs::remove_file(&bench_path);
    group.finish();

    let mut group = c.benchmark_group("wire");
    let report = {
        use ptm_net::mac::TempMac;
        use ptm_net::message::{Message, Report};
        Message::Report(Report {
            mac: TempMac::random(&mut rng),
            dh_public: 77,
            nonce: 5,
            ciphertext: vec![0u8; 8],
            tag: [1u8; 32],
        })
    };
    group.bench_function("encode_report_frame", |b| {
        b.iter(|| ptm_net::wire::encode(&report))
    });
    let frame = ptm_net::wire::encode(&report);
    group.bench_function("decode_report_frame", |b| {
        b.iter(|| ptm_net::wire::decode(&frame).expect("valid"))
    });
    group.finish();
}

fn bench_rpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc");
    let scheme = EncodingScheme::new(21, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(17);
    let mut record = ptm_core::record::TrafficRecord::new(
        LocationId::new(15),
        PeriodId::new(0),
        BitmapSize::new(4096).expect("pow2"),
    );
    for _ in 0..1500 {
        let v = VehicleSecrets::generate(&mut rng, 3);
        record.encode(&scheme, &v);
    }

    // Transport frame round trip over an in-memory stream.
    let request = ptm_rpc::Request::Upload(record.clone());
    let payload = ptm_rpc::proto::encode_request(&request);
    group.throughput(Throughput::Bytes(
        (payload.len() + ptm_rpc::FRAME_HEADER_LEN) as u64,
    ));
    group.bench_function("frame_write_4k_record", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(payload.len() + ptm_rpc::FRAME_HEADER_LEN);
            ptm_rpc::frame::write_frame(&mut out, &payload).expect("vec write");
            out
        })
    });
    let mut framed = Vec::new();
    ptm_rpc::frame::write_frame(&mut framed, &payload).expect("vec write");
    group.bench_function("frame_read_4k_record", |b| {
        b.iter(|| {
            let mut cursor = std::io::Cursor::new(framed.as_slice());
            ptm_rpc::frame::read_frame(&mut cursor, ptm_rpc::DEFAULT_MAX_FRAME_LEN)
                .expect("valid frame")
        })
    });
    // The same read through the permanent fault hooks with no plan armed:
    // this is the production configuration, and it must cost nothing over
    // the bare stream.
    group.bench_function("frame_read_4k_record_fault_hooks_disabled", |b| {
        b.iter(|| {
            let mut stream =
                ptm_fault::FaultyStream::passthrough(std::io::Cursor::new(framed.as_slice()));
            ptm_rpc::frame::read_frame(&mut stream, ptm_rpc::DEFAULT_MAX_FRAME_LEN)
                .expect("valid frame")
        })
    });

    // Full frame round trip: write into a buffer, read it back.
    group.bench_function("frame_roundtrip_4k_record", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(payload.len() + ptm_rpc::FRAME_HEADER_LEN);
            ptm_rpc::frame::write_frame(&mut out, &payload).expect("vec write");
            let mut cursor = std::io::Cursor::new(out.as_slice());
            ptm_rpc::frame::read_frame(&mut cursor, ptm_rpc::DEFAULT_MAX_FRAME_LEN)
                .expect("valid frame")
        })
    });

    // Protocol codec round trip: a 64-record batch.
    let batch: Vec<ptm_core::record::TrafficRecord> = (0..64)
        .map(|p| {
            let mut r = ptm_core::record::TrafficRecord::new(
                record.location(),
                PeriodId::new(p),
                BitmapSize::new(4096).expect("pow2"),
            );
            for idx in record.bitmap().iter_ones() {
                r.set_reported_index(idx);
            }
            r
        })
        .collect();
    let batch_request = ptm_rpc::Request::UploadBatch(batch);
    group.bench_function("proto_encode_batch_64", |b| {
        b.iter(|| ptm_rpc::proto::encode_request(&batch_request))
    });
    let batch_payload = ptm_rpc::proto::encode_request(&batch_request);
    group.bench_function("proto_decode_batch_64", |b| {
        b.iter(|| ptm_rpc::proto::decode_request(&batch_payload).expect("valid"))
    });
    group.finish();
}

fn bench_shard_store(c: &mut Criterion) {
    use ptm_net::CentralServer;
    use ptm_rpc::{QueryCache, QueryKey};

    let scheme = EncodingScheme::new(33, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(29);
    let size = BitmapSize::new(4096).expect("pow2");
    const LOCATIONS: u64 = 8;
    const PERIODS: u32 = 4;
    let records: Vec<ptm_core::record::TrafficRecord> = (1..=LOCATIONS)
        .flat_map(|loc| {
            let fleet: Vec<VehicleSecrets> = (0..300)
                .map(|_| VehicleSecrets::generate(&mut rng, 3))
                .collect();
            (0..PERIODS)
                .map(|p| {
                    let mut r = ptm_core::record::TrafficRecord::new(
                        LocationId::new(loc),
                        PeriodId::new(p),
                        size,
                    );
                    for v in &fleet {
                        r.encode(&scheme, v);
                    }
                    r
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let mut group = c.benchmark_group("shard_store");
    group.bench_function("submit_32_records_8_locations", |b| {
        b.iter_batched(
            || records.clone(),
            |batch| {
                let server = CentralServer::new(3);
                for record in batch {
                    server.submit(record).expect("fresh");
                }
                server
            },
            BatchSize::LargeInput,
        )
    });

    let server = CentralServer::new(3);
    for record in &records {
        server.submit(record.clone()).expect("fresh");
    }
    let periods: Vec<PeriodId> = (0..PERIODS).map(PeriodId::new).collect();
    // Shared read locks: queries against distinct shards never contend.
    group.bench_function("point_estimate_sharded_read", |b| {
        let mut loc = 0u64;
        b.iter(|| {
            loc = loc % LOCATIONS + 1;
            server
                .estimate_point_persistent(LocationId::new(loc), &periods)
                .expect("stored")
        })
    });

    // The epoch-validated cache: a hit skips the estimator entirely.
    let cache = QueryCache::new(64);
    let key = QueryKey::Point {
        location: LocationId::new(1),
        periods: periods.clone(),
    };
    let answer = server
        .estimate_point_persistent(LocationId::new(1), &periods)
        .expect("stored");
    let epochs: Vec<(LocationId, u64)> =
        vec![(LocationId::new(1), server.epoch(LocationId::new(1)))];
    cache.store(key.clone(), answer, epochs);
    group.bench_function("cache_hit_epoch_validated", |b| {
        b.iter(|| {
            cache
                .lookup(&key, |l| server.epoch(l))
                .expect("fresh entry")
        })
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("v2i_protocol");
    group.sample_size(10);
    // Full event-driven period: 200 vehicles through one RSU, lossless.
    group.bench_function("period_200_vehicles", |b| {
        let mut period = 0u32;
        let scheme = EncodingScheme::new(11, 3);
        let size = BitmapSize::new(2048).expect("pow2");
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            scheme,
            &[(LocationId::new(1), size)],
            4,
        );
        let vehicles: Vec<usize> = (0..200).map(|_| sim.add_vehicle()).collect();
        b.iter(|| {
            for (k, &v) in vehicles.iter().enumerate() {
                sim.schedule_pass(v, 0, SimDuration::from_millis(100 * k as u64));
            }
            sim.run_period(PeriodId::new(period)).expect("fresh period");
            period += 1;
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bitmap,
    bench_encoding,
    bench_crypto,
    bench_storage,
    bench_rpc,
    bench_shard_store,
    bench_protocol
);
criterion_main!(benches);
