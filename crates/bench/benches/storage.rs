//! Storage-engine benchmarks: v1 full-replay open vs v2 manifest+index
//! open on the same 100k-record archive, plus page-cache hit/miss read
//! latency. `scripts/bench.sh` distills these into `BENCH_7.json`.
//!
//! The archives are built once, outside the timed loops: records carry
//! 1 Kibit bitmaps with no encodes, so the setup writes ~16 MB instead of
//! gigabytes while keeping the ratio that matters honest — a record frame
//! is ~10× the size of its 17-byte index entry, so a v1 open replays every
//! frame byte while a v2 open reads only manifest + footer indexes.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_core::encoding::LocationId;
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_store::{Archive, SegmentStore, StoreOptions};
use std::path::PathBuf;

const LOCATIONS: u64 = 100;
const PERIODS: u32 = 1000;

fn tiny_records() -> Vec<TrafficRecord> {
    let size = BitmapSize::new(1024).expect("pow2");
    let mut records = Vec::with_capacity((LOCATIONS as usize) * (PERIODS as usize));
    for location in 1..=LOCATIONS {
        for period in 0..PERIODS {
            records.push(TrafficRecord::new(
                LocationId::new(location),
                PeriodId::new(period),
                size,
            ));
        }
    }
    records
}

fn build_v1(path: &PathBuf, records: &[TrafficRecord]) {
    let mut archive = Archive::create(path).expect("v1 create");
    for chunk in records.chunks(1024) {
        archive.append_all(chunk.iter()).expect("v1 append");
    }
}

fn build_v2(dir: &PathBuf, opts: &StoreOptions, records: &[TrafficRecord]) {
    let mut store = SegmentStore::open(dir, opts.clone())
        .expect("v2 create")
        .store;
    for chunk in records.chunks(1024) {
        store.append_all(chunk.iter()).expect("v2 append");
    }
    // Clean shutdown: seal the tail so reopen is pure manifest + indexes.
    store.checkpoint().expect("checkpoint");
}

fn bench_storage(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("ptm-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("bench dir");
    let records = tiny_records();
    let opts = StoreOptions {
        rotate_bytes: 1 << 20,
        ..StoreOptions::default()
    };

    let v1_path = base.join("archive-v1.ptma");
    build_v1(&v1_path, &records);
    let v2_dir = base.join("archive-v2.ptma");
    build_v2(&v2_dir, &opts, &records);

    let mut group = c.benchmark_group("store");
    group.bench_function("v1_open_100k", |b| {
        b.iter(|| Archive::open(&v1_path).expect("v1 open").records.len())
    });
    group.bench_function("v2_open_100k", |b| {
        b.iter(|| {
            SegmentStore::open(&v2_dir, opts.clone())
                .expect("v2 open")
                .store
                .record_count()
        })
    });

    let location = LocationId::new(LOCATIONS / 2);
    let period = PeriodId::new(PERIODS / 2);
    let mut hit_store = SegmentStore::open(&v2_dir, opts.clone())
        .expect("open")
        .store;
    hit_store
        .get(location, period)
        .expect("warm read")
        .expect("record present");
    group.bench_function("read_hit", |b| {
        b.iter(|| hit_store.get(location, period).expect("cached read"))
    });

    // Capacity zero disables admission, so every read walks the index and
    // re-reads the frame from disk: the pure miss path.
    let miss_opts = StoreOptions {
        cache_capacity: 0,
        ..opts.clone()
    };
    let mut miss_store = SegmentStore::open(&v2_dir, miss_opts).expect("open").store;
    group.bench_function("read_miss", |b| {
        b.iter(|| miss_store.get(location, period).expect("uncached read"))
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
