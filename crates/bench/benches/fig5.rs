//! Regenerates **Fig. 5** (actual-vs-estimated scatters at f = 2) and
//! benchmarks one full scatter measurement (scenario generation + record
//! construction + both estimators).

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_bench::print_artifact;
use ptm_sim::scatter::{self, ScatterConfig};

fn bench_fig5(c: &mut Criterion) {
    let config = ScatterConfig {
        threads: 1,
        fractions: (1..=25).map(|i| i as f64 * 0.02).collect(),
        ..ScatterConfig::paper(2.0)
    };
    let result = scatter::run(&config);
    print_artifact("Fig. 5 (f = 2)", &scatter::render(&result));
    println!(
        "rms relative deviation from y = x: point {:.4}, p2p {:.4}",
        scatter::ScatterResult::rms_relative_deviation(&result.point),
        scatter::ScatterResult::rms_relative_deviation(&result.p2p),
    );

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let single = ScatterConfig {
        threads: 1,
        fractions: vec![0.2],
        runs_per_fraction: 1,
        ..ScatterConfig::paper(2.0)
    };
    group.bench_function("one_scatter_measurement_f2", |b| {
        b.iter(|| scatter::run(&single))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
