//! Reactor wire-path benchmarks: in-place frame decoding against the
//! copying baseline, pipelined (coalesced-commit, batched-ack) ingest
//! throughput, accept latency while the daemon already holds hundreds
//! of idle connections, and the cost of stamping a deadline budget into
//! the v3 request header.
//!
//! `scripts/bench.sh` distills these medians into `BENCH_8.json` and the
//! deadline pair into `BENCH_9.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_rpc::{
    read_frame, write_frame, ClientConfig, FrameDecoder, ReadOutcome, Request, RpcClient,
    RpcServer, ServerConfig, DEFAULT_MAX_FRAME_LEN,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;
use std::io::Cursor;
use std::net::TcpStream;
use std::time::Duration;

/// One realistic upload request payload (a ~4 KiB record), framed.
fn framed_upload() -> Vec<u8> {
    let scheme = EncodingScheme::new(77, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(77);
    let size = BitmapSize::new(4096).expect("pow2");
    let mut record = TrafficRecord::new(LocationId::new(5), PeriodId::new(0), size);
    for _ in 0..64 {
        let v = VehicleSecrets::generate(&mut rng, 3);
        record.encode(&scheme, &v);
    }
    let payload = ptm_rpc::proto::encode_request(&Request::Upload(record));
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).expect("frame");
    framed
}

/// Zero-copy decode (one reusable buffer, payload borrowed in place)
/// versus the copying `read_frame` baseline (fresh `Vec` per frame), over
/// the same framed upload.
fn bench_frame_decode(c: &mut Criterion) {
    let framed = framed_upload();
    let mut group = c.benchmark_group("frame");

    group.bench_function("decode_in_place", |b| {
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        b.iter(|| {
            let mut input: &[u8] = &framed;
            loop {
                if let Some(payload) = decoder.next_frame().expect("clean frame") {
                    break black_box(payload.len());
                }
                decoder.read_from(&mut input).expect("read");
            }
        });
    });

    group.bench_function("decode_copy", |b| {
        b.iter(|| {
            let mut cursor = Cursor::new(framed.as_slice());
            match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("clean frame") {
                ReadOutcome::Frame(payload) => black_box(payload.len()),
                other => panic!("expected a frame, got {other:?}"),
            }
        });
    });

    group.finish();
}

fn bench_server_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(1),
        max_connections: 1024,
        ..ServerConfig::default()
    }
}

/// Pipelined ingest throughput: one wave of fresh single-record uploads
/// per iteration, coalesced by the daemon into one commit with batched
/// acks. The median is per *wave* (16 records), not per record.
fn bench_pipelined_ingest(c: &mut Criterion) {
    let archive = std::env::temp_dir().join(format!("ptm-bench-pipe-{}.ptma", std::process::id()));
    let _ = std::fs::remove_file(&archive);
    let _ = std::fs::remove_dir_all(&archive);
    let server = RpcServer::start("127.0.0.1:0", &archive, bench_server_config()).expect("daemon");
    let mut client =
        RpcClient::connect(server.local_addr(), ClientConfig::default()).expect("client");

    const WAVE: usize = 16;
    let scheme = EncodingScheme::new(51, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(51);
    let size = BitmapSize::new(512).expect("pow2");
    let mut period = 0u32;
    // Fresh (location, period) pairs every wave, so the daemon takes the
    // full commit path instead of the idempotent-duplicate shortcut.
    let mut next_wave = move |rng: &mut ChaCha12Rng| -> Vec<TrafficRecord> {
        (0..WAVE)
            .map(|_| {
                let mut r = TrafficRecord::new(LocationId::new(9), PeriodId::new(period), size);
                period += 1;
                for _ in 0..4 {
                    let v = VehicleSecrets::generate(rng, 3);
                    r.encode(&scheme, &v);
                }
                r
            })
            .collect()
    };

    let mut group = c.benchmark_group("reactor");
    group.bench_function("pipelined_ingest", |b| {
        b.iter(|| {
            let wave = next_wave(&mut rng);
            let summary = client
                .upload_pipelined(&wave, WAVE)
                .expect("pipelined upload");
            assert_eq!(summary.accepted as usize, WAVE);
        });
    });
    group.finish();

    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_file(&archive);
    let _ = std::fs::remove_dir_all(&archive);
}

/// Accept latency at connection scale: each iteration is a fresh TCP
/// connect plus one ping round trip against a daemon already holding 512
/// idle connections the reactor must keep sweeping.
fn bench_accept_latency(c: &mut Criterion) {
    let archive =
        std::env::temp_dir().join(format!("ptm-bench-accept-{}.ptma", std::process::id()));
    let _ = std::fs::remove_file(&archive);
    let _ = std::fs::remove_dir_all(&archive);
    let server = RpcServer::start("127.0.0.1:0", &archive, bench_server_config()).expect("daemon");
    let addr = server.local_addr();
    let ping = ptm_rpc::proto::encode_request(&Request::Ping);

    // The standing population: 512 idle connections that have each proven
    // themselves live with one ping.
    let mut held = Vec::with_capacity(512);
    for _ in 0..512 {
        let mut stream = TcpStream::connect(addr).expect("held connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        write_frame(&mut stream, &ping).expect("held ping");
        match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("held pong") {
            ReadOutcome::Frame(_) => {}
            other => panic!("held connection got {other:?}"),
        }
        held.push(stream);
    }

    let mut group = c.benchmark_group("reactor");
    group.bench_function("accept_latency", |b| {
        b.iter(|| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            write_frame(&mut stream, &ping).expect("ping");
            match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("pong") {
                ReadOutcome::Frame(bytes) => black_box(bytes.len()),
                other => panic!("expected a pong, got {other:?}"),
            }
        });
    });
    group.finish();

    drop(held);
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_file(&archive);
    let _ = std::fs::remove_dir_all(&archive);
}

/// Deadline-stamping overhead: encoding the same ~4 KiB upload request
/// with and without the `FLAG_DEADLINE` budget stamp. The stamp is one
/// flag bit plus four little-endian bytes; this pair pins that adding it
/// to every client attempt stays within noise of the unstamped encode.
fn bench_deadline_stamp(c: &mut Criterion) {
    let scheme = EncodingScheme::new(77, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(77);
    let size = BitmapSize::new(4096).expect("pow2");
    let mut record = TrafficRecord::new(LocationId::new(5), PeriodId::new(0), size);
    for _ in 0..64 {
        let v = VehicleSecrets::generate(&mut rng, 3);
        record.encode(&scheme, &v);
    }
    let request = Request::Upload(record);

    let mut group = c.benchmark_group("deadline");
    group.bench_function("encode_unstamped", |b| {
        b.iter(|| black_box(ptm_rpc::proto::encode_request_with(&request, None, None)).len());
    });
    group.bench_function("encode_stamped", |b| {
        b.iter(|| {
            black_box(ptm_rpc::proto::encode_request_with(
                &request,
                None,
                Some(5000),
            ))
            .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_decode,
    bench_pipelined_ingest,
    bench_accept_latency,
    bench_deadline_stamp
);
criterion_main!(benches);
