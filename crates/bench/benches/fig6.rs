//! Regenerates **Fig. 6** (actual-vs-estimated scatters at f = 3) and
//! benchmarks the f = 3 measurement path; together with the `fig5` target
//! this quantifies the accuracy side of the f dial.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_bench::print_artifact;
use ptm_sim::scatter::{self, ScatterConfig};

fn bench_fig6(c: &mut Criterion) {
    let config = ScatterConfig {
        threads: 1,
        fractions: (1..=25).map(|i| i as f64 * 0.02).collect(),
        ..ScatterConfig::paper(3.0)
    };
    let result = scatter::run(&config);
    print_artifact("Fig. 6 (f = 3)", &scatter::render(&result));
    println!(
        "rms relative deviation from y = x: point {:.4}, p2p {:.4}",
        scatter::ScatterResult::rms_relative_deviation(&result.point),
        scatter::ScatterResult::rms_relative_deviation(&result.p2p),
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    let single = ScatterConfig {
        threads: 1,
        fractions: vec![0.2],
        runs_per_fraction: 1,
        ..ScatterConfig::paper(3.0)
    };
    group.bench_function("one_scatter_measurement_f3", |b| {
        b.iter(|| scatter::run(&single))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
