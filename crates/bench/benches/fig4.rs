//! Regenerates **Fig. 4** (point persistent relative error, proposed vs
//! benchmark, t = 5 and t = 10) and benchmarks both estimators on a
//! representative workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_bench::{print_artifact, BENCH_RUNS};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::SystemParams;
use ptm_core::point::{NaiveAndEstimator, PointEstimator};
use ptm_sim::fig4::{self, Fig4Config};
use ptm_sim::workload::build_point_records;
use ptm_traffic::generate::PointScenario;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig4(c: &mut Criterion) {
    for t in [5usize, 10] {
        let config = Fig4Config {
            runs_per_point: BENCH_RUNS,
            threads: 1,
            // Coarser sweep for bench-time regeneration (CLI runs all 50).
            fractions: (1..=10).map(|i| i as f64 * 0.05).collect(),
            ..Fig4Config::panel(t)
        };
        let panel = fig4::run(&config);
        print_artifact(&format!("Fig. 4, t = {t}"), &fig4::render(&panel));
    }

    // Kernel benchmark: estimate from t = 10 records of ~6000 vehicles.
    let params = SystemParams::paper_default();
    let mut rng = ChaCha12Rng::seed_from_u64(5);
    let scheme = EncodingScheme::new(5, 3);
    let scenario = PointScenario::synthetic(&mut rng, 10, 0.2);
    let records = build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);

    let mut group = c.benchmark_group("fig4");
    group.bench_function("proposed_estimator_t10", |b| {
        b.iter(|| {
            PointEstimator::new()
                .estimate(&records)
                .expect("no saturation")
        })
    });
    group.bench_function("benchmark_estimator_t10", |b| {
        b.iter(|| {
            NaiveAndEstimator::new()
                .estimate(&records)
                .expect("no saturation")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
