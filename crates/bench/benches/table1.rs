//! Regenerates **Table I** (point-to-point persistent traffic on Sioux
//! Falls) and benchmarks its pipeline: record construction + two-level
//! join + estimation at full paper scale for one location pair.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ptm_bench::{print_artifact, BENCH_RUNS};
use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::SystemParams;
use ptm_sim::table1::{self, Table1Config};
use ptm_sim::workload::build_p2p_records;
use ptm_traffic::generate::P2pScenario;
use ptm_traffic::network::NodeId;
use ptm_traffic::sioux_falls;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_table1(c: &mut Criterion) {
    // Regenerate the table at reduced run count and print it.
    let config = Table1Config {
        runs: BENCH_RUNS,
        threads: 1,
        ..Table1Config::default()
    };
    let result = table1::run(&config);
    print_artifact("Table I", &table1::render(&result));

    // Kernel benchmark: one full run of the heaviest column (node 15 vs
    // node 10: 213k + 451k vehicles over 10 periods).
    let params = SystemParams::paper_default();
    let table = sioux_falls::paper_trip_table();
    let scenario = P2pScenario::from_trip_table(&table, NodeId::new(14), NodeId::new(9), 10);
    let estimator = PointToPointEstimator::new(3);

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("build_records_node15_vs_node10_t10", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                (
                    ChaCha12Rng::seed_from_u64(seed),
                    EncodingScheme::new(seed, 3),
                )
            },
            |(mut rng, scheme)| {
                build_p2p_records(
                    &scheme,
                    &params,
                    &scenario,
                    LocationId::new(15),
                    LocationId::new(10),
                    None,
                    &mut rng,
                )
            },
            BatchSize::PerIteration,
        )
    });

    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let scheme = EncodingScheme::new(7, 3);
    let records = build_p2p_records(
        &scheme,
        &params,
        &scenario,
        LocationId::new(15),
        LocationId::new(10),
        None,
        &mut rng,
    );
    group.bench_function("estimate_p2p_t10", |b| {
        b.iter(|| {
            estimator
                .estimate(&records.records_l, &records.records_lp)
                .expect("paper-scale records never saturate")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
