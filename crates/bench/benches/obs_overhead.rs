//! Overhead of the ptm-obs instrumentation, disabled and enabled.
//!
//! The contract the hot paths rely on: with metrics **disabled** (the
//! default), every recording call is a relaxed atomic load plus a branch —
//! low single-digit nanoseconds. The `disabled/*` groups prove it; the
//! `enabled/*` groups show what turning metrics on costs; the `encode/*`
//! group measures the end-to-end price on the real vehicle-encoding path.
//!
//! Run order matters for global state, so each benchmark sets the enabled
//! flag explicitly rather than trusting a prior group to restore it.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_primitives_disabled(c: &mut Criterion) {
    ptm_obs::set_metrics_enabled(false);
    let mut group = c.benchmark_group("disabled");
    group.bench_function("counter_inc", |b| {
        let counter = ptm_obs::registry().counter("bench.disabled.counter");
        b.iter(|| counter.inc());
    });
    group.bench_function("counter_macro_inc", |b| {
        b.iter(|| ptm_obs::counter!("bench.disabled.macro_counter").inc());
    });
    group.bench_function("gauge_set", |b| {
        let gauge = ptm_obs::registry().gauge("bench.disabled.gauge");
        b.iter(|| gauge.set(black_box(42)));
    });
    group.bench_function("histogram_record", |b| {
        let hist = ptm_obs::registry().histogram("bench.disabled.hist");
        b.iter(|| hist.record(black_box(1234)));
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let _t = ptm_obs::span!("bench.disabled.span");
            black_box(0u64)
        });
    });
    group.bench_function("tspan", |b| {
        ptm_obs::set_tracing_enabled(false);
        b.iter(|| {
            let _t = ptm_obs::tspan!("bench.disabled.tspan");
            black_box(0u64)
        });
    });
    group.finish();
}

fn bench_primitives_enabled(c: &mut Criterion) {
    ptm_obs::set_metrics_enabled(true);
    let mut group = c.benchmark_group("enabled");
    group.bench_function("counter_inc", |b| {
        let counter = ptm_obs::registry().counter("bench.enabled.counter");
        b.iter(|| counter.inc());
    });
    group.bench_function("counter_macro_inc", |b| {
        b.iter(|| ptm_obs::counter!("bench.enabled.macro_counter").inc());
    });
    group.bench_function("gauge_set", |b| {
        let gauge = ptm_obs::registry().gauge("bench.enabled.gauge");
        b.iter(|| gauge.set(black_box(42)));
    });
    group.bench_function("histogram_record", |b| {
        let hist = ptm_obs::registry().histogram("bench.enabled.hist");
        b.iter(|| hist.record(black_box(1234)));
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let _t = ptm_obs::span!("bench.enabled.span");
            black_box(0u64)
        });
    });
    group.finish();
    ptm_obs::set_metrics_enabled(false);
}

/// The real workload the disabled-path guarantee protects: encoding a
/// vehicle into a traffic record, instrumented inside ptm-core.
fn bench_encode_path(c: &mut Criterion) {
    let scheme = EncodingScheme::new(0xBE7C, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(9);
    let vehicles: Vec<VehicleSecrets> = (0..256)
        .map(|_| VehicleSecrets::generate(&mut rng, 3))
        .collect();
    let size = BitmapSize::new(1 << 14).expect("pow2");

    let mut group = c.benchmark_group("encode");
    for (label, enabled) in [("metrics_off", false), ("metrics_on", true)] {
        group.bench_function(label, |b| {
            ptm_obs::set_metrics_enabled(enabled);
            let mut record = TrafficRecord::new(LocationId::new(3), PeriodId::new(0), size);
            let mut i = 0usize;
            b.iter(|| {
                record.encode(&scheme, &vehicles[i % vehicles.len()]);
                i += 1;
            });
            ptm_obs::set_metrics_enabled(false);
        });
    }
    group.finish();
}

/// The traced-ingest contract: a loopback upload round trip with tracing
/// off must cost the same as the pre-tracing baseline (the `tspan!` sites
/// on the dispatch path degrade to relaxed loads), and turning tracing on
/// prices the full span tree — id minting, clock reads, JSONL encode.
fn bench_traced_ingest(c: &mut Criterion) {
    use ptm_core::params::SystemParams;
    use ptm_rpc::{ClientConfig, RpcClient, RpcServer, ServerConfig};

    let archive = std::env::temp_dir().join(format!("ptm-bench-trace-{}.ptma", std::process::id()));
    let _ = std::fs::remove_file(&archive);
    let server =
        RpcServer::start("127.0.0.1:0", &archive, ServerConfig::default()).expect("daemon");
    let mut client =
        RpcClient::connect(server.local_addr(), ClientConfig::default()).expect("loopback client");

    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(51, params.num_representatives());
    let mut rng = ChaCha12Rng::seed_from_u64(51);
    let size = BitmapSize::new(512).expect("pow2");
    let mut period = 0u32;
    // Each iteration uploads a *fresh* (location, period) so the daemon
    // takes the full ingest path — dispatch, writer lock, archive commit —
    // instead of the idempotent-duplicate shortcut.
    let mut next_record = move |rng: &mut ChaCha12Rng| {
        let mut r = TrafficRecord::new(LocationId::new(9), PeriodId::new(period), size);
        period += 1;
        for _ in 0..16 {
            let v = VehicleSecrets::generate(rng, params.num_representatives());
            r.encode(&scheme, &v);
        }
        r
    };

    let mut group = c.benchmark_group("trace");
    for (label, traced) in [("ingest_untraced", false), ("ingest_traced", true)] {
        group.bench_function(label, |b| {
            if traced {
                // Include the serialization cost, not the disk: spans go
                // to a sink writer.
                ptm_obs::set_trace_writer(Some(Box::new(std::io::sink())));
            }
            ptm_obs::set_tracing_enabled(traced);
            b.iter(|| {
                let record = next_record(&mut rng);
                client.upload(&record).expect("loopback upload")
            });
            ptm_obs::set_tracing_enabled(false);
            ptm_obs::set_trace_writer(None);
        });
    }
    group.finish();

    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_file(&archive);
}

criterion_group!(
    benches,
    bench_primitives_disabled,
    bench_primitives_enabled,
    bench_encode_path,
    bench_traced_ingest
);
criterion_main!(benches);
