//! Overhead of the ptm-obs instrumentation, disabled and enabled.
//!
//! The contract the hot paths rely on: with metrics **disabled** (the
//! default), every recording call is a relaxed atomic load plus a branch —
//! low single-digit nanoseconds. The `disabled/*` groups prove it; the
//! `enabled/*` groups show what turning metrics on costs; the `encode/*`
//! group measures the end-to-end price on the real vehicle-encoding path.
//!
//! Run order matters for global state, so each benchmark sets the enabled
//! flag explicitly rather than trusting a prior group to restore it.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn bench_primitives_disabled(c: &mut Criterion) {
    ptm_obs::set_metrics_enabled(false);
    let mut group = c.benchmark_group("disabled");
    group.bench_function("counter_inc", |b| {
        let counter = ptm_obs::registry().counter("bench.disabled.counter");
        b.iter(|| counter.inc());
    });
    group.bench_function("counter_macro_inc", |b| {
        b.iter(|| ptm_obs::counter!("bench.disabled.macro_counter").inc());
    });
    group.bench_function("gauge_set", |b| {
        let gauge = ptm_obs::registry().gauge("bench.disabled.gauge");
        b.iter(|| gauge.set(black_box(42)));
    });
    group.bench_function("histogram_record", |b| {
        let hist = ptm_obs::registry().histogram("bench.disabled.hist");
        b.iter(|| hist.record(black_box(1234)));
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let _t = ptm_obs::span!("bench.disabled.span");
            black_box(0u64)
        });
    });
    group.finish();
}

fn bench_primitives_enabled(c: &mut Criterion) {
    ptm_obs::set_metrics_enabled(true);
    let mut group = c.benchmark_group("enabled");
    group.bench_function("counter_inc", |b| {
        let counter = ptm_obs::registry().counter("bench.enabled.counter");
        b.iter(|| counter.inc());
    });
    group.bench_function("counter_macro_inc", |b| {
        b.iter(|| ptm_obs::counter!("bench.enabled.macro_counter").inc());
    });
    group.bench_function("gauge_set", |b| {
        let gauge = ptm_obs::registry().gauge("bench.enabled.gauge");
        b.iter(|| gauge.set(black_box(42)));
    });
    group.bench_function("histogram_record", |b| {
        let hist = ptm_obs::registry().histogram("bench.enabled.hist");
        b.iter(|| hist.record(black_box(1234)));
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let _t = ptm_obs::span!("bench.enabled.span");
            black_box(0u64)
        });
    });
    group.finish();
    ptm_obs::set_metrics_enabled(false);
}

/// The real workload the disabled-path guarantee protects: encoding a
/// vehicle into a traffic record, instrumented inside ptm-core.
fn bench_encode_path(c: &mut Criterion) {
    let scheme = EncodingScheme::new(0xBE7C, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(9);
    let vehicles: Vec<VehicleSecrets> = (0..256)
        .map(|_| VehicleSecrets::generate(&mut rng, 3))
        .collect();
    let size = BitmapSize::new(1 << 14).expect("pow2");

    let mut group = c.benchmark_group("encode");
    for (label, enabled) in [("metrics_off", false), ("metrics_on", true)] {
        group.bench_function(label, |b| {
            ptm_obs::set_metrics_enabled(enabled);
            let mut record = TrafficRecord::new(LocationId::new(3), PeriodId::new(0), size);
            let mut i = 0usize;
            b.iter(|| {
                record.encode(&scheme, &vehicles[i % vehicles.len()]);
                i += 1;
            });
            ptm_obs::set_metrics_enabled(false);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives_disabled,
    bench_primitives_enabled,
    bench_encode_path
);
criterion_main!(benches);
