//! Shared scaffolding for the benchmark harness.
//!
//! Each bench target regenerates one paper table/figure (printing the
//! result so `cargo bench` doubles as the reproduction driver) and then
//! times its computational kernel with Criterion. Bench-time regeneration
//! uses reduced run counts — the `ptm` CLI runs the full-scale versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run counts used inside `cargo bench` so a full sweep stays fast on one
/// core; the CLI defaults are an order of magnitude higher.
pub const BENCH_RUNS: usize = 4;

/// Prints a regenerated artifact with a banner, once per bench invocation.
pub fn print_artifact(name: &str, body: &str) {
    println!("\n================ regenerated: {name} ================");
    println!("{body}");
    println!("====================================================\n");
}
