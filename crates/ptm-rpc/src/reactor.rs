//! Bounded worker pool backing the reactor daemon.
//!
//! The event loop in [`crate::server`] owns every socket; CPU- and
//! storage-bound work (estimates, commits, stats snapshots) is handed to
//! this pool so a slow disk or an expensive query never stalls the wire.
//! Jobs go in over a condvar-woken queue; completions come back through a
//! mutex-guarded vector the reactor drains each sweep, which keeps every
//! socket write on the event-loop thread.

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A fixed-size pool of worker threads mapping jobs `J` to completions `C`.
///
/// `inflight()` counts jobs submitted whose completions have not yet been
/// produced, letting the reactor spin hot while work is pending and sleep
/// when the daemon is idle.
pub(crate) struct WorkerPool<J, C> {
    shared: Arc<PoolShared<J, C>>,
    handles: Vec<JoinHandle<()>>,
}

struct PoolShared<J, C> {
    queue: Mutex<VecDeque<J>>,
    wake: Condvar,
    completions: Mutex<Vec<C>>,
    inflight: AtomicUsize,
    stop: AtomicBool,
}

impl<J: Send + 'static, C: Send + 'static> WorkerPool<J, C> {
    /// Spawns `workers` threads (at least one) running `run` over submitted
    /// jobs.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when a worker thread cannot be spawned.
    pub fn new<F>(workers: usize, name: &str, run: F) -> io::Result<Self>
    where
        F: Fn(J) -> C + Send + Sync + 'static,
    {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            inflight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let run = Arc::new(run);
        let count = workers.max(1);
        let mut handles = Vec::with_capacity(count);
        for index in 0..count {
            let shared = Arc::clone(&shared);
            let run = Arc::clone(&run);
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{index}"))
                .spawn(move || worker_loop(&shared, run.as_ref()))?;
            handles.push(handle);
        }
        Ok(Self { shared, handles })
    }

    /// Enqueues one job and wakes a worker.
    pub fn submit(&self, job: J) {
        self.shared.inflight.fetch_add(1, Ordering::AcqRel);
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        queue.push_back(job);
        drop(queue);
        self.shared.wake.notify_one();
    }

    /// Moves every pending completion into `out` (preserving production
    /// order within each worker) without blocking on in-progress jobs.
    pub fn drain_completions(&self, out: &mut Vec<C>) {
        let mut done = self
            .shared
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        out.append(&mut done);
    }

    /// Jobs submitted whose completions have not yet been produced.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// Signals every worker to exit once the queue drains and joins them.
    pub fn shutdown_and_join(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked already contained the panic in its
            // job runner; a join error here has nothing left to report.
            let _ = handle.join();
        }
    }
}

fn worker_loop<J, C>(shared: &PoolShared<J, C>, run: &(dyn Fn(J) -> C + Send + Sync)) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .wake
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        // Job runners contain their own panics (the daemon answers
        // Error{Internal} and closes only the affected connection); this
        // guard is the last resort that keeps the worker thread alive and
        // the inflight count accurate even if that containment slips.
        if let Ok(completion) = catch_unwind(AssertUnwindSafe(|| run(job))) {
            let mut done = shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            done.push(completion);
        }
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn drain_until<C: Send + 'static>(pool: &WorkerPool<u32, C>, want: usize) -> Vec<C> {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut out = Vec::new();
        while out.len() < want {
            pool.drain_completions(&mut out);
            assert!(
                Instant::now() < deadline,
                "pool never produced {want} completions"
            );
            std::thread::yield_now();
        }
        out
    }

    #[test]
    fn jobs_round_trip_and_inflight_drains() {
        let pool = WorkerPool::new(3, "test-pool", |job: u32| job * 2).expect("spawn");
        for job in 0..16u32 {
            pool.submit(job);
        }
        let mut out = drain_until(&pool, 16);
        out.sort_unstable();
        assert_eq!(out, (0..16).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(pool.inflight(), 0);
        pool.shutdown_and_join();
    }

    #[test]
    fn panicking_job_keeps_workers_alive() {
        let pool = WorkerPool::new(1, "test-panic", |job: u32| {
            assert!(job != 7, "injected panic");
            job
        })
        .expect("spawn");
        pool.submit(7);
        pool.submit(8);
        let out = drain_until(&pool, 1);
        assert_eq!(out, vec![8]);
        assert_eq!(pool.inflight(), 0);
        pool.shutdown_and_join();
    }

    #[test]
    fn zero_worker_request_still_gets_one_thread() {
        let pool = WorkerPool::new(0, "test-min", |job: u32| job + 1).expect("spawn");
        pool.submit(41);
        assert_eq!(drain_until(&pool, 1), vec![42]);
        pool.shutdown_and_join();
    }
}
