//! Bounded worker pool backing the reactor daemon.
//!
//! The event loop in [`crate::server`] owns every socket; CPU- and
//! storage-bound work (estimates, commits) is handed to this pool so a
//! slow disk or an expensive query never stalls the wire. Jobs go in over
//! a condvar-woken queue; completions come back through a mutex-guarded
//! vector the reactor drains each sweep, which keeps every socket write on
//! the event-loop thread.
//!
//! Since the overload-control work the pool is **class-aware**: each job
//! is submitted under a [`JobClass`] into that class's own bounded queue,
//! workers always drain the highest class first (control > query >
//! upload), and a full class queue rejects the submission immediately so
//! the caller can shed with a retry hint instead of letting latency grow
//! unbounded. Each dequeued job carries its measured queue sojourn, which
//! the server feeds into its CoDel-style `retry_after_ms` hint and uses to
//! drop doomed work (jobs whose wire deadline expired while queued).

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduling class of a submitted job, highest priority first.
///
/// Control traffic (ping, stats) must stay answerable during an incident,
/// queries are latency-sensitive, and uploads are throughput work the
/// RSU fleet retries anyway — so that is the shed order, last first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobClass {
    /// Ping / stats introspection: never starved, smallest queue.
    Control = 0,
    /// Estimate queries.
    Query = 1,
    /// Upload / upload-batch ingest.
    Upload = 2,
}

/// Number of [`JobClass`] values (queue-array size).
pub(crate) const CLASS_COUNT: usize = 3;

impl JobClass {
    /// Lowercase name used in metric suffixes (`rpc.shed.by_class.*`).
    pub fn name(self) -> &'static str {
        match self {
            JobClass::Control => "control",
            JobClass::Query => "query",
            JobClass::Upload => "upload",
        }
    }
}

/// A fixed-size pool of worker threads mapping jobs `J` to completions `C`.
///
/// `inflight()` counts jobs submitted whose completions have not yet been
/// produced, letting the reactor spin hot while work is pending and sleep
/// when the daemon is idle.
pub(crate) struct WorkerPool<J, C> {
    shared: Arc<PoolShared<J, C>>,
    handles: Vec<JoinHandle<()>>,
}

struct Queued<J> {
    job: J,
    enqueued: Instant,
}

struct PoolShared<J, C> {
    queues: Mutex<[VecDeque<Queued<J>>; CLASS_COUNT]>,
    caps: [usize; CLASS_COUNT],
    wake: Condvar,
    completions: Mutex<Vec<C>>,
    inflight: AtomicUsize,
    depths: [AtomicUsize; CLASS_COUNT],
    stop: AtomicBool,
}

impl<J: Send + 'static, C: Send + 'static> WorkerPool<J, C> {
    /// Spawns `workers` threads (at least one) running `run` over submitted
    /// jobs. `caps` bounds each class queue (0 = unbounded); `run` receives
    /// each job together with the time it spent queued.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when a worker thread cannot be spawned.
    pub fn new<F>(
        workers: usize,
        name: &str,
        caps: [usize; CLASS_COUNT],
        run: F,
    ) -> io::Result<Self>
    where
        F: Fn(J, Duration) -> C + Send + Sync + 'static,
    {
        let shared = Arc::new(PoolShared {
            queues: Mutex::new(std::array::from_fn(|_| VecDeque::new())),
            caps,
            wake: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            inflight: AtomicUsize::new(0),
            depths: std::array::from_fn(|_| AtomicUsize::new(0)),
            stop: AtomicBool::new(false),
        });
        let run = Arc::new(run);
        let count = workers.max(1);
        let mut handles = Vec::with_capacity(count);
        for index in 0..count {
            let shared = Arc::clone(&shared);
            let run = Arc::clone(&run);
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{index}"))
                .spawn(move || worker_loop(&shared, run.as_ref()))?;
            handles.push(handle);
        }
        Ok(Self { shared, handles })
    }

    /// Enqueues one job under `class` and wakes a worker.
    ///
    /// # Errors
    ///
    /// Returns the job back when that class's queue is at capacity — the
    /// admission-control rejection; the caller sheds it with a hint
    /// instead of queueing doomed work.
    pub fn submit(&self, class: JobClass, job: J) -> Result<(), J> {
        let mut queues = self
            .shared
            .queues
            // ptm-analyze: allow(reactor-blocking): bounded push under the queue mutex; workers hold it only to pop a job, never across execution
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let queue = &mut queues[class as usize];
        let cap = self.shared.caps[class as usize];
        if cap != 0 && queue.len() >= cap {
            return Err(job);
        }
        queue.push_back(Queued {
            job,
            enqueued: Instant::now(),
        });
        self.shared.depths[class as usize].fetch_add(1, Ordering::AcqRel);
        self.shared.inflight.fetch_add(1, Ordering::AcqRel);
        drop(queues);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Moves every pending completion into `out` (preserving production
    /// order within each worker) without blocking on in-progress jobs.
    pub fn drain_completions(&self, out: &mut Vec<C>) {
        let mut done = self
            .shared
            .completions
            // ptm-analyze: allow(reactor-blocking): bounded vec move under the completions mutex; workers hold it only to push a finished job
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        out.append(&mut done);
    }

    /// Jobs submitted whose completions have not yet been produced.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// Jobs currently waiting in each class queue (not yet dequeued).
    pub fn depths(&self) -> [usize; CLASS_COUNT] {
        std::array::from_fn(|i| self.shared.depths[i].load(Ordering::Acquire))
    }

    /// Signals every worker to exit once the queues drain and joins them.
    pub fn shutdown_and_join(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked already contained the panic in its
            // job runner; a join error here has nothing left to report.
            let _ = handle.join();
        }
        // Jobs still queued when the workers exited never ran: settle the
        // gauges so a shutdown racing queued work cannot leak them.
        let mut queues = self
            .shared
            .queues
            // ptm-analyze: allow(reactor-blocking): shutdown path — workers have already exited, so nothing contends the queue mutex
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (class, queue) in queues.iter_mut().enumerate() {
            let abandoned = queue.len();
            queue.clear();
            self.shared.depths[class].fetch_sub(abandoned, Ordering::AcqRel);
            self.shared.inflight.fetch_sub(abandoned, Ordering::AcqRel);
        }
    }
}

// ptm-analyze: worker-entry
fn worker_loop<J, C>(shared: &PoolShared<J, C>, run: &(dyn Fn(J, Duration) -> C + Send + Sync)) {
    loop {
        let queued = {
            let mut queues = shared.queues.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                // Strict priority: control first, uploads last.
                if let Some(hit) = (0..CLASS_COUNT)
                    .find_map(|class| queues[class].pop_front().map(|queued| (queued, class)))
                {
                    break Some(hit);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                queues = shared
                    .wake
                    .wait(queues)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((Queued { job, enqueued }, class)) = queued else {
            return;
        };
        shared.depths[class].fetch_sub(1, Ordering::AcqRel);
        let sojourn = enqueued.elapsed();
        // Job runners contain their own panics (the daemon answers
        // Error{Internal} and closes only the affected connection); this
        // guard is the last resort that keeps the worker thread alive and
        // the inflight count accurate even if that containment slips.
        if let Ok(completion) = catch_unwind(AssertUnwindSafe(|| run(job, sojourn))) {
            let mut done = shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            done.push(completion);
        }
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPEN: [usize; CLASS_COUNT] = [0, 0, 0];

    fn drain_until<C: Send + 'static>(pool: &WorkerPool<u32, C>, want: usize) -> Vec<C> {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut out = Vec::new();
        while out.len() < want {
            pool.drain_completions(&mut out);
            assert!(
                Instant::now() < deadline,
                "pool never produced {want} completions"
            );
            std::thread::yield_now();
        }
        out
    }

    #[test]
    fn jobs_round_trip_and_inflight_drains() {
        let pool =
            WorkerPool::new(3, "test-pool", OPEN, |job: u32, _queued| job * 2).expect("spawn");
        for job in 0..16u32 {
            pool.submit(JobClass::Upload, job).expect("unbounded");
        }
        let mut out = drain_until(&pool, 16);
        out.sort_unstable();
        assert_eq!(out, (0..16).map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(pool.inflight(), 0);
        assert_eq!(pool.depths(), [0, 0, 0]);
        pool.shutdown_and_join();
    }

    #[test]
    fn panicking_job_keeps_workers_alive_and_gauges_exact() {
        let pool = WorkerPool::new(1, "test-panic", OPEN, |job: u32, _queued| {
            assert!(job != 7, "injected panic");
            job
        })
        .expect("spawn");
        pool.submit(JobClass::Query, 7).expect("submit");
        pool.submit(JobClass::Query, 8).expect("submit");
        let out = drain_until(&pool, 1);
        assert_eq!(out, vec![8]);
        // The panicked job must not leak the inflight gauge or its class
        // depth (regression: gauges return to zero after a panic).
        assert_eq!(pool.inflight(), 0);
        assert_eq!(pool.depths(), [0, 0, 0]);
        pool.shutdown_and_join();
    }

    #[test]
    fn zero_worker_request_still_gets_one_thread() {
        let pool =
            WorkerPool::new(0, "test-min", OPEN, |job: u32, _queued| job + 1).expect("spawn");
        pool.submit(JobClass::Control, 41).expect("submit");
        assert_eq!(drain_until(&pool, 1), vec![42]);
        pool.shutdown_and_join();
    }

    #[test]
    fn full_class_queue_rejects_without_touching_other_classes() {
        // No workers draining: park the single worker on a long job first.
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().expect("gate");
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(1, "test-cap", [1, 1, 2], move |job: u32, _queued| {
                drop(gate.lock().unwrap_or_else(PoisonError::into_inner));
                job
            })
            .expect("spawn")
        };
        // First job occupies the worker (blocked on the gate); wait until
        // it has been dequeued so the queues below fill deterministically.
        pool.submit(JobClass::Upload, 0).expect("occupies worker");
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.depths()[JobClass::Upload as usize] != 0 {
            assert!(Instant::now() < deadline, "worker never picked up job");
            std::thread::yield_now();
        }
        pool.submit(JobClass::Upload, 1).expect("upload slot 1");
        pool.submit(JobClass::Upload, 2).expect("upload slot 2");
        assert_eq!(
            pool.submit(JobClass::Upload, 3),
            Err(3),
            "upload queue at cap rejects"
        );
        // Other classes keep their own headroom.
        pool.submit(JobClass::Query, 10).expect("query admitted");
        assert_eq!(pool.submit(JobClass::Query, 11), Err(11));
        pool.submit(JobClass::Control, 20)
            .expect("control admitted");
        assert_eq!(pool.depths(), [1, 1, 2]);
        drop(held);
        let _ = drain_until(&pool, 5);
        assert_eq!(pool.depths(), [0, 0, 0]);
        assert_eq!(pool.inflight(), 0);
        pool.shutdown_and_join();
    }

    #[test]
    fn control_class_drains_before_queued_uploads() {
        // One worker, blocked; then queue uploads before a control job.
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().expect("gate");
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(1, "test-prio", OPEN, move |job: u32, _queued| {
                if job == 0 {
                    drop(gate.lock().unwrap_or_else(PoisonError::into_inner));
                }
                job
            })
            .expect("spawn")
        };
        pool.submit(JobClass::Upload, 0).expect("occupies worker");
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.depths()[JobClass::Upload as usize] != 0 {
            assert!(Instant::now() < deadline, "worker never picked up job");
            std::thread::yield_now();
        }
        for job in [1, 2, 3] {
            pool.submit(JobClass::Upload, job).expect("queued upload");
        }
        pool.submit(JobClass::Control, 99).expect("queued control");
        drop(held);
        let out = drain_until(&pool, 5);
        // The control job ran before every upload that was queued with it.
        let control_at = out.iter().position(|&j| j == 99).expect("control ran");
        let first_upload = out.iter().position(|&j| j == 1).expect("upload ran");
        assert!(
            control_at < first_upload,
            "control must preempt queued uploads: {out:?}"
        );
        pool.shutdown_and_join();
    }

    #[test]
    fn shutdown_racing_queued_jobs_settles_gauges() {
        let gate = Arc::new(AtomicBool::new(false));
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(1, "test-race", OPEN, move |job: u32, _queued| {
                while !gate.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                job
            })
            .expect("spawn")
        };
        pool.submit(JobClass::Upload, 0).expect("occupies worker");
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.depths()[JobClass::Upload as usize] != 0 {
            assert!(Instant::now() < deadline, "worker never picked up job");
            std::thread::yield_now();
        }
        for job in [1, 2, 3, 4] {
            pool.submit(JobClass::Upload, job).expect("queued");
        }
        // Shut down while four jobs are still queued. The running job gets
        // to finish (the gate opens below), the queued ones are abandoned —
        // and the gauges must land on zero either way.
        let shared = Arc::clone(&pool.shared);
        let release = std::thread::spawn({
            let gate = Arc::clone(&gate);
            move || {
                std::thread::sleep(Duration::from_millis(50));
                gate.store(true, Ordering::Release);
            }
        });
        pool.shutdown_and_join();
        release.join().expect("release thread");
        assert_eq!(shared.inflight.load(Ordering::Acquire), 0);
        for depth in &shared.depths {
            assert_eq!(depth.load(Ordering::Acquire), 0);
        }
    }
}
