//! The retrying RPC client.
//!
//! [`RpcClient`] opens (and transparently re-opens) one TCP connection to a
//! daemon and exposes typed calls for every [`crate::proto::Request`]. Each
//! call retries on *retryable* failures — connection refused/reset, timeouts,
//! a stream closed mid-exchange, a checksum-mangled response — with capped
//! exponential backoff plus jitter, and fails fast on *fatal* ones — any
//! error the server actually answered with (version mismatch, conflicting
//! duplicate, malformed request, missing record).
//!
//! Retrying an upload whose ack was lost is safe because the daemon's ingest
//! is idempotent: an identical re-send is acked as a duplicate, not stored
//! twice. That at-least-once contract is what lets this client treat every
//! ambiguous transport failure as "try again".
//!
//! Several mechanisms keep a retrying fleet from making a bad situation
//! worse (see `docs/FAULTS.md`):
//!
//! * a server [`Response::Overloaded`] answer is retried after at least
//!   its `retry_after_ms` hint, not hammered on the normal backoff;
//! * an optional **deadline budget** ([`ClientConfig::deadline`]) caps the
//!   total wall-clock a call may spend across all its attempts — and each
//!   attempt stamps its *remaining* budget into the v3 request header, so
//!   the server can drop the request instead of executing it once this
//!   client has already given up ([`Response::DeadlineExceeded`]);
//! * a **retry budget** ([`ClientConfig::retry_budget`]) — a token bucket
//!   spent one per retry and refilled one per successful call — bounds how
//!   much retry pressure a persistently failing client adds on top of its
//!   per-call attempt cap;
//! * a **circuit breaker** opens after
//!   [`ClientConfig::breaker_threshold`] consecutive failed calls, failing
//!   further calls instantly ([`ClientError::CircuitOpen`]) until a
//!   cooldown passes and one half-open probe call is let through;
//! * a server [`Response::GoingAway`] answer (graceful drain) is a clean
//!   hand-off: the client drops the doomed connection and retries —
//!   against the restarted instance — after the server's hint.

use crate::frame::{
    append_frame_with, read_frame_with_stall, write_frame_vectored, FrameError, ReadOutcome,
    DEFAULT_MAX_FRAME_LEN,
};
use crate::proto::{
    decode_response, encode_request_with, ErrorCode, ProtoError, Request, Response, WireTrace,
    MAX_BATCH_RECORDS,
};
use ptm_core::record::TrafficRecord;
use ptm_core::{LocationId, PeriodId};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Largest number of upload frames [`RpcClient::upload_pipelined`] keeps in
/// flight before pausing to drain acks. Caps the daemon-side reply queue a
/// single connection can build up.
pub const MAX_PIPELINE_WINDOW: usize = 256;

/// Tuning knobs for [`RpcClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-attempt read/write timeout on the open stream.
    pub io_timeout: Duration,
    /// Total attempts per call (first try + retries). Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `min(cap, base * 2^(n-1))` plus jitter.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
    /// Seed for the jitter PRNG (deterministic in tests).
    pub jitter_seed: u64,
    /// Largest response frame accepted.
    pub max_frame_len: u32,
    /// Total wall-clock budget per call, spanning every attempt and
    /// backoff sleep. `None` (the default) leaves only `max_attempts` as
    /// the bound. A call that would sleep past the budget fails with
    /// [`ClientError::DeadlineExceeded`] instead of sleeping.
    pub deadline: Option<Duration>,
    /// Consecutive failed *calls* before the circuit breaker opens; 0
    /// disables the breaker.
    pub breaker_threshold: u32,
    /// Minimum time the breaker stays open. A server `retry_after_ms`
    /// hint larger than this extends the hold.
    pub breaker_cooldown: Duration,
    /// Capacity of the retry token bucket; 0 disables it. Every retry
    /// sleep spends one token and every successful call refills one (up
    /// to this capacity), so a client whose calls keep failing runs dry
    /// and fails fast instead of compounding a server's overload with
    /// `max_attempts` retries per call, forever.
    pub retry_budget: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            max_attempts: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            deadline: None,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(500),
            retry_budget: 32,
        }
    }
}

/// Why a call failed for good.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with an application error; retrying cannot help.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The response decoded to something other than what the call expects
    /// (protocol confusion; not retryable).
    UnexpectedResponse(String),
    /// The response payload failed to decode.
    Proto(ProtoError),
    /// Every attempt failed on transport errors; the last one is kept.
    Exhausted {
        /// Attempts made (equals `max_attempts`).
        attempts: u32,
        /// The final transport-level failure.
        last: String,
    },
    /// A request that can never be sent (e.g. an oversized batch).
    InvalidRequest(String),
    /// The deadline budget ran out before any attempt succeeded.
    DeadlineExceeded {
        /// Attempts completed before the budget ran out.
        attempts: u32,
        /// The most recent failure (empty if the first attempt never ran).
        last: String,
    },
    /// The circuit breaker is open: recent calls kept failing, so this one
    /// failed instantly without touching the network.
    CircuitOpen {
        /// How long until the breaker admits a half-open probe call.
        retry_after: Duration,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
            Self::UnexpectedResponse(detail) => write!(f, "unexpected response: {detail}"),
            Self::Proto(err) => write!(f, "protocol error: {err}"),
            Self::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            Self::InvalidRequest(detail) => write!(f, "invalid request: {detail}"),
            Self::DeadlineExceeded { attempts, last } => {
                write!(f, "deadline exceeded after {attempts} attempts: {last}")
            }
            Self::CircuitOpen { retry_after } => {
                write!(
                    f,
                    "circuit breaker open; retry in {} ms",
                    retry_after.as_millis()
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// The daemon's answer to an upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadSummary {
    /// Records newly persisted by this call.
    pub accepted: u32,
    /// Records the daemon already held with identical contents.
    pub duplicates: u32,
}

/// Ping response: the server's protocol version, estimator parameter, and
/// health snapshot — the payload behind `ptm serve --health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Protocol version the server speaks.
    pub version: u8,
    /// Representative-bit count `s` used by the point-to-point estimator.
    pub s: u32,
    /// Records currently held by the server's query engine.
    pub records: u64,
    /// Whether ingest is degraded (uploads shed while the archive backend
    /// is down; queries still served).
    pub degraded: bool,
}

enum AttemptError {
    /// Transport-level; worth retrying on a fresh connection.
    Retryable(String),
    /// Application-level; retrying is pointless.
    Fatal(ClientError),
}

/// How one decoded server answer steers the retry loop.
enum Disposition {
    /// The call's actual answer (success or payload); hand it to the
    /// caller.
    Done,
    /// A healthy server asking for space: keep the connection, retry
    /// after at least the hint.
    RetryAfter(u32),
    /// The server dropped the queued request past its wire deadline.
    /// Retryable: the next attempt stamps a fresh remaining-budget
    /// header, so it only runs if this call still has time left.
    RetryDoomed,
    /// Graceful-drain hand-off: drop the doomed connection, retry after
    /// the hint (against the restarted or replacement instance).
    RetryElsewhere(u32),
    /// The server answered with an application error; retrying cannot
    /// help.
    Fatal,
}

/// Classifies a decoded response as retryable or fatal.
///
/// Every error-range [`Response`] variant (the set [`Response::is_error`]
/// matches in `proto.rs`) must have an arm here — the `error-retryability`
/// rule in ptm-analyze fails the build when a new error variant is added
/// to the protocol without deciding its retry semantics.
fn classify_response(response: &Response) -> Disposition {
    match response {
        Response::Overloaded { retry_after_ms } => Disposition::RetryAfter(*retry_after_ms),
        Response::DeadlineExceeded => Disposition::RetryDoomed,
        Response::GoingAway { retry_after_ms } => Disposition::RetryElsewhere(*retry_after_ms),
        Response::Error { .. } => Disposition::Fatal,
        _ => Disposition::Done,
    }
}

/// The remaining deadline budget to stamp into this attempt's v3 header
/// (`None` when the call has no deadline — nothing is stamped and the
/// server never dooms the request). Clamped up to 1 ms so an attempt the
/// client is still willing to make is never stamped "already expired".
fn remaining_budget_ms(started: Instant, deadline: Option<Duration>) -> Option<u32> {
    deadline.map(|budget| {
        let remaining = budget.saturating_sub(started.elapsed());
        u32::try_from(remaining.as_millis())
            .unwrap_or(u32::MAX)
            .max(1)
    })
}

fn retryable_io(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::Interrupted
    )
}

fn classify_frame_error(err: FrameError) -> AttemptError {
    match err {
        // A mangled or cut-off response is a transport fault: the request
        // may or may not have been applied, and idempotent ingest makes a
        // blind retry safe either way.
        FrameError::Truncated | FrameError::Stalled | FrameError::BadCrc { .. } => {
            AttemptError::Retryable(err.to_string())
        }
        FrameError::Io(io_err) if retryable_io(io_err.kind()) => {
            AttemptError::Retryable(io_err.to_string())
        }
        FrameError::Io(io_err) => AttemptError::Fatal(ClientError::Exhausted {
            attempts: 0,
            last: io_err.to_string(),
        }),
        FrameError::TooLarge { .. } => {
            AttemptError::Fatal(ClientError::UnexpectedResponse(err.to_string()))
        }
    }
}

/// A client for one daemon address. Not thread-safe; open one per thread.
pub struct RpcClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    jitter_state: u64,
    /// Consecutive failed calls, for the circuit breaker.
    consecutive_failures: u32,
    /// While `Some`, the breaker is open and calls before this instant
    /// fail fast; the first call after it is the half-open probe.
    open_until: Option<Instant>,
    /// Remaining retry tokens (see [`ClientConfig::retry_budget`]).
    retry_tokens: u32,
}

impl RpcClient {
    /// Creates a client for `addr`. No connection is made until the first
    /// call.
    ///
    /// # Errors
    ///
    /// Address resolution failures.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|err| ClientError::InvalidRequest(format!("bad address: {err}")))?
            .next()
            .ok_or_else(|| ClientError::InvalidRequest("address resolved to nothing".into()))?;
        let jitter_state = config.jitter_seed | 1;
        let retry_tokens = config.retry_budget;
        Ok(Self {
            addr,
            config,
            stream: None,
            jitter_state,
            consecutive_failures: 0,
            open_until: None,
            retry_tokens,
        })
    }

    /// The resolved server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Pings the daemon, returning its protocol version and `s` parameter.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> Result<ServerInfo, ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong {
                version,
                s,
                records,
                degraded,
            } => Ok(ServerInfo {
                version,
                s,
                records,
                degraded,
            }),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Uploads one record (retried until acked or attempts are exhausted).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; `Server { code: DuplicateConflict, .. }` means a
    /// different record already occupies this `(location, period)`.
    pub fn upload(&mut self, record: &TrafficRecord) -> Result<UploadSummary, ClientError> {
        match self.call(&Request::Upload(record.clone()))? {
            Response::UploadOk {
                accepted,
                duplicates,
            } => Ok(UploadSummary {
                accepted,
                duplicates,
            }),
            other => Err(unexpected("UploadOk", &other)),
        }
    }

    /// Uploads a batch in one frame. The daemon applies it atomically: a
    /// conflict anywhere rejects the whole batch.
    ///
    /// # Errors
    ///
    /// [`ClientError::InvalidRequest`] for batches over
    /// [`MAX_BATCH_RECORDS`]; otherwise any [`ClientError`].
    pub fn upload_batch(
        &mut self,
        records: &[TrafficRecord],
    ) -> Result<UploadSummary, ClientError> {
        if records.len() > MAX_BATCH_RECORDS {
            return Err(ClientError::InvalidRequest(format!(
                "batch of {} exceeds the {MAX_BATCH_RECORDS}-record limit",
                records.len()
            )));
        }
        if records.is_empty() {
            return Ok(UploadSummary {
                accepted: 0,
                duplicates: 0,
            });
        }
        match self.call(&Request::UploadBatch(records.to_vec()))? {
            Response::UploadOk {
                accepted,
                duplicates,
            } => Ok(UploadSummary {
                accepted,
                duplicates,
            }),
            other => Err(unexpected("UploadOk", &other)),
        }
    }

    /// Uploads `records` as pipelined single-record frames: up to `window`
    /// frames (clamped to 1..=[`MAX_PIPELINE_WINDOW`]) are written in one
    /// batched wave before the matching acks are drained in order. The
    /// reactor daemon coalesces consecutive pipelined uploads into a single
    /// commit and batches their acks into one write, so this is the
    /// high-throughput ingest path for an RSU draining a backlog.
    ///
    /// Outcome semantics match issuing [`RpcClient::upload`] per record:
    /// acks are counted per record, an `Overloaded` shed pauses the
    /// pipeline and retries only the unacked records after the server's
    /// hint, and a transport failure reconnects and re-sends every unacked
    /// record (safe because ingest is idempotent).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; the first server `Error` frame (e.g. a
    /// conflicting duplicate) fails the call, with already-acked records
    /// staying persisted.
    pub fn upload_pipelined(
        &mut self,
        records: &[TrafficRecord],
        window: usize,
    ) -> Result<UploadSummary, ClientError> {
        if records.is_empty() {
            return Ok(UploadSummary {
                accepted: 0,
                duplicates: 0,
            });
        }
        let window = window.clamp(1, MAX_PIPELINE_WINDOW);
        if let Some(until) = self.open_until {
            let now = Instant::now();
            if now < until {
                ptm_obs::counter!("rpc.client.breaker.rejected").inc();
                return Err(ClientError::CircuitOpen {
                    retry_after: until - now,
                });
            }
            self.open_until = None;
        }
        let call_span = ptm_obs::tspan!("rpc.client.request");
        let wire = call_span.context().map(|ctx| WireTrace {
            trace_id: ctx.trace_id,
            parent_span: ctx.span_id,
        });
        // Each record is encoded once; retries re-send the same bytes, so
        // the daemon's duplicate detection sees bit-identical payloads.
        // The deadline stamp is the full budget (not re-computed per
        // retry) for the same reason — and because a backlog drain cares
        // about not losing records, not per-record latency.
        let stamp = remaining_budget_ms(Instant::now(), self.config.deadline);
        let payloads: Vec<Vec<u8>> = records
            .iter()
            .map(|record| encode_request_with(&Request::Upload(record.clone()), wire, stamp))
            .collect();
        let mut acked = vec![false; records.len()];
        let mut summary = UploadSummary {
            accepted: 0,
            duplicates: 0,
        };
        let attempts = self.config.max_attempts.max(1);
        let started = Instant::now();
        let mut last = String::new();
        let mut retry_hint: Option<Duration> = None;
        let mut last_hint: Option<u32> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = self.backoff(attempt);
                let delay = retry_hint.take().map_or(backoff, |hint| hint.max(backoff));
                if let Some(budget) = self.config.deadline {
                    if started.elapsed() + delay >= budget {
                        ptm_obs::counter!("rpc.client.deadline_exceeded").inc();
                        self.record_failure(last_hint);
                        return Err(ClientError::DeadlineExceeded {
                            attempts: attempt,
                            last,
                        });
                    }
                }
                if !self.spend_retry_token() {
                    self.record_failure(last_hint);
                    return Err(ClientError::Exhausted {
                        attempts: attempt,
                        last: format!("retry budget exhausted ({last})"),
                    });
                }
                ptm_obs::counter!("rpc.client.retries").inc();
                std::thread::sleep(delay);
            }
            match self.pipeline_attempt(&payloads, &mut acked, window, &mut summary) {
                Ok(None) => {
                    self.on_success();
                    return Ok(summary);
                }
                Ok(Some(retry_after_ms)) => {
                    ptm_obs::counter!("rpc.client.overloaded").inc();
                    retry_hint = Some(Duration::from_millis(u64::from(retry_after_ms)));
                    last_hint = Some(retry_after_ms);
                    last = format!("server overloaded; asked to retry after {retry_after_ms} ms");
                }
                Err(AttemptError::Fatal(err)) => {
                    self.record_failure(None);
                    return Err(err);
                }
                Err(AttemptError::Retryable(detail)) => {
                    ptm_obs::debug!("rpc.client", "pipelined attempt failed";
                        attempt = attempt + 1, error = detail.clone());
                    self.stream = None;
                    last = detail;
                }
            }
        }
        ptm_obs::counter!("rpc.client.exhausted").inc();
        self.record_failure(last_hint);
        Err(ClientError::Exhausted { attempts, last })
    }

    /// One pipelined pass over every record not yet acked: frames are
    /// written in `window`-sized waves (one batched vectored write per
    /// wave), then the wave's acks are drained in order. Returns `Ok(None)`
    /// when every record is acked, `Ok(Some(hint))` when the server shed
    /// part of the pass with `Overloaded`.
    fn pipeline_attempt(
        &mut self,
        payloads: &[Vec<u8>],
        acked: &mut [bool],
        window: usize,
        summary: &mut UploadSummary,
    ) -> Result<Option<u32>, AttemptError> {
        let io_timeout = self.config.io_timeout;
        let max_frame_len = self.config.max_frame_len;
        let stream = self.ensure_stream()?;
        let pending: Vec<usize> = (0..payloads.len()).filter(|&i| !acked[i]).collect();
        let mut wave_buf = Vec::new();
        let mut shed_hint: Option<u32> = None;
        for wave in pending.chunks(window) {
            wave_buf.clear();
            for &index in wave {
                append_frame_with(&mut wave_buf, |out| {
                    out.extend_from_slice(&payloads[index]);
                });
            }
            stream.write_all(&wave_buf).map_err(|err| {
                if retryable_io(err.kind()) {
                    AttemptError::Retryable(format!("send: {err}"))
                } else {
                    AttemptError::Fatal(ClientError::Exhausted {
                        attempts: 0,
                        last: format!("send: {err}"),
                    })
                }
            })?;
            ptm_obs::counter!("rpc.client.frames.out").add(wave.len() as u64);
            for &index in wave {
                let bytes = match read_frame_with_stall(stream, max_frame_len, Some(io_timeout)) {
                    Ok(ReadOutcome::Frame(bytes)) => bytes,
                    Ok(ReadOutcome::Idle) => {
                        return Err(AttemptError::Retryable("response timed out".into()))
                    }
                    Ok(ReadOutcome::Closed) => {
                        return Err(AttemptError::Retryable(
                            "connection closed awaiting response".into(),
                        ))
                    }
                    Err(err) => return Err(classify_frame_error(err)),
                };
                ptm_obs::counter!("rpc.client.frames.in").inc();
                let response = decode_response(&bytes)
                    .map_err(|err| AttemptError::Fatal(ClientError::Proto(err)))?;
                match classify_response(&response) {
                    Disposition::Done => match response {
                        Response::UploadOk {
                            accepted,
                            duplicates,
                        } => {
                            acked[index] = true;
                            summary.accepted += accepted;
                            summary.duplicates += duplicates;
                        }
                        other => {
                            return Err(AttemptError::Fatal(unexpected("UploadOk", &other)));
                        }
                    },
                    Disposition::RetryAfter(retry_after_ms) => {
                        shed_hint = Some(retry_after_ms);
                    }
                    // The record's frame sat in the worker queue past the
                    // stamped deadline; it stays unacked and the next
                    // pass re-sends it (normal backoff, no hint).
                    Disposition::RetryDoomed => {
                        ptm_obs::counter!("rpc.client.deadline_dropped").inc();
                        shed_hint = Some(shed_hint.unwrap_or(0));
                    }
                    // Graceful drain mid-pipeline: the connection is done
                    // serving. Surface as a transport-style retry so the
                    // outer loop reconnects and re-sends the unacked tail
                    // (idempotent ingest makes that safe).
                    Disposition::RetryElsewhere(retry_after_ms) => {
                        ptm_obs::counter!("rpc.client.going_away").inc();
                        return Err(AttemptError::Retryable(format!(
                            "server going away; asked to hand off after {retry_after_ms} ms"
                        )));
                    }
                    Disposition::Fatal => match response {
                        Response::Error { code, message } => {
                            if code == ErrorCode::VersionMismatch {
                                ptm_obs::counter!("rpc.client.version_mismatch").inc();
                            }
                            return Err(AttemptError::Fatal(ClientError::Server { code, message }));
                        }
                        other => {
                            return Err(AttemptError::Fatal(unexpected("UploadOk", &other)));
                        }
                    },
                }
            }
            if shed_hint.is_some() {
                // The server is shedding: stop pushing more waves and let
                // the caller back off before retrying the unacked tail.
                break;
            }
        }
        Ok(shed_hint)
    }

    /// Queries the traffic-volume estimate for one location and period.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn query_volume(
        &mut self,
        location: LocationId,
        period: PeriodId,
    ) -> Result<f64, ClientError> {
        self.expect_estimate(&Request::QueryVolume { location, period })
    }

    /// Queries the point persistent-traffic estimate over `periods`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn query_point(
        &mut self,
        location: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ClientError> {
        self.expect_estimate(&Request::QueryPoint {
            location,
            periods: periods.to_vec(),
        })
    }

    /// Queries the point-to-point persistent-traffic estimate over
    /// `periods`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn query_p2p(
        &mut self,
        location_a: LocationId,
        location_b: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ClientError> {
        self.expect_estimate(&Request::QueryP2p {
            location_a,
            location_b,
            periods: periods.to_vec(),
        })
    }

    fn expect_estimate(&mut self, request: &Request) -> Result<f64, ClientError> {
        match self.call(request)? {
            Response::Estimate(value) => Ok(value),
            other => Err(unexpected("Estimate", &other)),
        }
    }

    /// Fetches the daemon's live introspection snapshot as a JSON string —
    /// record/shard counts, histogram percentiles, the full metrics
    /// snapshot, and recent flight-recorder entries. This is the payload
    /// behind `ptm top`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// One request/response exchange with retries, bounded by the attempt
    /// count, the optional deadline budget, and the circuit breaker.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        if let Some(until) = self.open_until {
            let now = Instant::now();
            if now < until {
                ptm_obs::counter!("rpc.client.breaker.rejected").inc();
                return Err(ClientError::CircuitOpen {
                    retry_after: until - now,
                });
            }
            // Cooldown over: this call is the half-open probe. Success
            // closes the breaker; failure re-opens it for another hold.
            self.open_until = None;
        }
        // One span covers the whole call — every attempt, backoff sleep,
        // and the final decode share it — and its context rides the v3
        // request header so the daemon's spans join this trace.
        let call_span = ptm_obs::tspan!("rpc.client.request");
        let wire = call_span.context().map(|ctx| WireTrace {
            trace_id: ctx.trace_id,
            parent_span: ctx.span_id,
        });
        let attempts = self.config.max_attempts.max(1);
        let started = Instant::now();
        let mut last = String::new();
        // A server retry_after_ms hint floors the next backoff, and the
        // latest hint seeds the breaker hold if this call exhausts.
        let mut retry_hint: Option<Duration> = None;
        let mut last_hint: Option<u32> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = self.backoff(attempt);
                let delay = retry_hint.take().map_or(backoff, |hint| hint.max(backoff));
                if let Some(budget) = self.config.deadline {
                    if started.elapsed() + delay >= budget {
                        ptm_obs::counter!("rpc.client.deadline_exceeded").inc();
                        self.record_failure(last_hint);
                        return Err(ClientError::DeadlineExceeded {
                            attempts: attempt,
                            last,
                        });
                    }
                }
                if !self.spend_retry_token() {
                    self.record_failure(last_hint);
                    return Err(ClientError::Exhausted {
                        attempts: attempt,
                        last: format!("retry budget exhausted ({last})"),
                    });
                }
                ptm_obs::counter!("rpc.client.retries").inc();
                std::thread::sleep(delay);
            }
            // Re-encoded per attempt: the stamped header carries the
            // budget still remaining *now*, so the server sees how long
            // this attempt — not the original call — is worth queueing.
            let payload = encode_request_with(
                request,
                wire,
                remaining_budget_ms(started, self.config.deadline),
            );
            match self.attempt(&payload) {
                Ok(response) => match classify_response(&response) {
                    Disposition::Done => {
                        // Any decoded answer means the transport and
                        // server are alive: the breaker resets.
                        self.on_success();
                        return Ok(response);
                    }
                    Disposition::Fatal => {
                        // The breaker resets even for an error frame —
                        // the server is speaking, and nothing about a
                        // retry improves its answer.
                        self.on_success();
                        if let Response::Error { code, message } = response {
                            if code == ErrorCode::VersionMismatch {
                                ptm_obs::counter!("rpc.client.version_mismatch").inc();
                            }
                            return Err(ClientError::Server { code, message });
                        }
                        return Err(unexpected("a decodable answer", &response));
                    }
                    // An overload shed is a healthy server asking for
                    // space: keep the connection, honor the hint, retry.
                    Disposition::RetryAfter(retry_after_ms) => {
                        ptm_obs::counter!("rpc.client.overloaded").inc();
                        retry_hint = Some(Duration::from_millis(u64::from(retry_after_ms)));
                        last_hint = Some(retry_after_ms);
                        last =
                            format!("server overloaded; asked to retry after {retry_after_ms} ms");
                    }
                    // The server dropped the queued request past its wire
                    // deadline. The next attempt re-stamps whatever
                    // budget is left; the deadline check above ends the
                    // call once none remains.
                    Disposition::RetryDoomed => {
                        ptm_obs::counter!("rpc.client.deadline_dropped").inc();
                        last = "server dropped the request past its wire deadline".into();
                    }
                    // Graceful drain: this connection is done serving.
                    // Drop it and retry elsewhere after the hint.
                    Disposition::RetryElsewhere(retry_after_ms) => {
                        ptm_obs::counter!("rpc.client.going_away").inc();
                        self.stream = None;
                        retry_hint = Some(Duration::from_millis(u64::from(retry_after_ms)));
                        last_hint = Some(retry_after_ms);
                        last = format!(
                            "server going away; asked to hand off after {retry_after_ms} ms"
                        );
                    }
                },
                Err(AttemptError::Fatal(err)) => {
                    self.record_failure(None);
                    return Err(err);
                }
                Err(AttemptError::Retryable(detail)) => {
                    ptm_obs::debug!("rpc.client", "attempt failed";
                        attempt = attempt + 1, error = detail.clone());
                    self.stream = None;
                    last = detail;
                }
            }
        }
        ptm_obs::counter!("rpc.client.exhausted").inc();
        self.record_failure(last_hint);
        Err(ClientError::Exhausted { attempts, last })
    }

    /// Resets the breaker after any decoded server answer, and refills
    /// one retry token (successes earn back the right to retry later).
    fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.open_until = None;
        if self.config.retry_budget != 0 && self.retry_tokens < self.config.retry_budget {
            self.retry_tokens += 1;
            ptm_obs::counter!("rpc.client.retry_budget.refilled").inc();
        }
    }

    /// Takes one retry token. `false` means the bucket is dry: the call
    /// must give up now instead of adding more retry pressure to a
    /// server that has not answered a success in a long time.
    fn spend_retry_token(&mut self) -> bool {
        if self.config.retry_budget == 0 {
            return true;
        }
        if self.retry_tokens == 0 {
            ptm_obs::counter!("rpc.client.retry_budget.exhausted").inc();
            return false;
        }
        self.retry_tokens -= 1;
        ptm_obs::counter!("rpc.client.retry_budget.spent").inc();
        true
    }

    /// Counts one failed call toward the breaker, opening it at the
    /// threshold for `max(retry_after hint, breaker_cooldown)`.
    fn record_failure(&mut self, hint_ms: Option<u32>) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= self.config.breaker_threshold {
            let hold = hint_ms
                .map(|ms| Duration::from_millis(u64::from(ms)))
                .map_or(self.config.breaker_cooldown, |hint| {
                    hint.max(self.config.breaker_cooldown)
                });
            self.open_until = Some(Instant::now() + hold);
            ptm_obs::counter!("rpc.client.breaker.opened").inc();
            ptm_obs::warn!("rpc.client", "circuit breaker opened";
                failures = self.consecutive_failures, hold_ms = hold.as_millis() as u64);
        }
    }

    /// Opens the TCP stream if none is cached, classifying connect failures.
    fn ensure_stream(&mut self) -> Result<&mut TcpStream, AttemptError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
                .map_err(|err| {
                    if retryable_io(err.kind()) {
                        AttemptError::Retryable(format!("connect: {err}"))
                    } else {
                        AttemptError::Fatal(ClientError::Exhausted {
                            attempts: 0,
                            last: format!("connect: {err}"),
                        })
                    }
                })?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(self.config.io_timeout));
            let _ = stream.set_write_timeout(Some(self.config.io_timeout));
            ptm_obs::counter!("rpc.client.connects").inc();
            self.stream = Some(stream);
        }
        match self.stream.as_mut() {
            Some(stream) => Ok(stream),
            // Unreachable: the branch above just ensured the stream.
            None => Err(AttemptError::Retryable(
                "stream missing after connect".into(),
            )),
        }
    }

    fn attempt(&mut self, payload: &[u8]) -> Result<Response, AttemptError> {
        let io_timeout = self.config.io_timeout;
        let max_frame_len = self.config.max_frame_len;
        let stream = self.ensure_stream()?;
        write_frame_vectored(stream, payload).map_err(|err| {
            if retryable_io(err.kind()) {
                AttemptError::Retryable(format!("send: {err}"))
            } else {
                AttemptError::Fatal(ClientError::Exhausted {
                    attempts: 0,
                    last: format!("send: {err}"),
                })
            }
        })?;
        ptm_obs::counter!("rpc.client.frames.out").inc();
        // The stall budget lets a response that is already arriving keep
        // dribbling in for up to another io_timeout, instead of failing
        // the attempt at the first mid-frame timeout.
        let bytes = match read_frame_with_stall(stream, max_frame_len, Some(io_timeout)) {
            Ok(ReadOutcome::Frame(bytes)) => bytes,
            // The io_timeout read deadline surfaces as Idle when it fires
            // before the first response byte; for a client awaiting an
            // answer that is a timeout, not idleness.
            Ok(ReadOutcome::Idle) => {
                return Err(AttemptError::Retryable("response timed out".into()))
            }
            Ok(ReadOutcome::Closed) => {
                return Err(AttemptError::Retryable(
                    "connection closed awaiting response".into(),
                ))
            }
            Err(err) => return Err(classify_frame_error(err)),
        };
        ptm_obs::counter!("rpc.client.frames.in").inc();
        decode_response(&bytes).map_err(|err| match err {
            ProtoError::VersionMismatch { .. } => AttemptError::Fatal(ClientError::Proto(err)),
            other => AttemptError::Fatal(ClientError::Proto(other)),
        })
    }

    /// Backoff before retry `attempt` (1-based): exponential with a cap,
    /// plus up to 50% jitter from a xorshift PRNG so a fleet of clients
    /// recovering from one outage does not reconnect in lockstep.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self.config.backoff_base.saturating_mul(1u32 << exp);
        let capped = base.min(self.config.backoff_cap);
        // xorshift64 — no external RNG dependency for one jitter source.
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        let jitter_frac = (x % 1000) as f64 / 1000.0 * 0.5;
        capped.mul_f64(1.0 + jitter_frac)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::UnexpectedResponse(format!("wanted {wanted}, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut client = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        let b1 = client.backoff(1);
        let b3 = client.backoff(3);
        let b10 = client.backoff(10);
        assert!(b1 >= Duration::from_millis(1), "{b1:?}");
        assert!(b1 <= Duration::from_millis(2), "{b1:?}"); // base + 50% jitter
        assert!(b3 >= Duration::from_millis(4), "{b3:?}"); // capped
        assert!(b10 <= Duration::from_millis(6), "{b10:?}"); // cap + 50%
    }

    #[test]
    fn jitter_varies_between_calls() {
        let mut client = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        let samples: Vec<Duration> = (0..8).map(|_| client.backoff(5)).collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(
            distinct.len() > 1,
            "jitter produced identical delays: {samples:?}"
        );
    }

    #[test]
    fn refused_connection_exhausts_retries() {
        // Port 1 on loopback is essentially never listening.
        let mut client = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        match client.ping() {
            Err(ClientError::Exhausted { attempts: 3, .. }) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn oversized_batch_rejected_locally() {
        let mut client = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        let record = ptm_core::record::TrafficRecord::new(
            LocationId::new(1),
            PeriodId::new(0),
            ptm_core::params::BitmapSize::new(64).expect("pow2"),
        );
        let batch = vec![record; MAX_BATCH_RECORDS + 1];
        match client.upload_batch(&batch) {
            Err(ClientError::InvalidRequest(_)) => {}
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch_is_a_local_no_op() {
        let mut client = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        let summary = client.upload_batch(&[]).expect("empty batch");
        assert_eq!(
            summary,
            UploadSummary {
                accepted: 0,
                duplicates: 0
            }
        );
    }

    #[test]
    fn same_seed_yields_identical_backoff_sequences() {
        // Deterministic jitter: two clients with the same seed sleep the
        // same sequence; a different seed diverges.
        let mut a = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        let mut b = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        let mut c = RpcClient::connect(
            "127.0.0.1:1",
            ClientConfig {
                jitter_seed: 0xDEAD_BEEF,
                ..test_config()
            },
        )
        .expect("client");
        let seq_a: Vec<Duration> = (1..=8).map(|n| a.backoff(n)).collect();
        let seq_b: Vec<Duration> = (1..=8).map(|n| b.backoff(n)).collect();
        let seq_c: Vec<Duration> = (1..=8).map(|n| c.backoff(n)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn deadline_budget_caps_total_retry_time() {
        // 100 permitted attempts but a 60 ms budget against 20 ms
        // backoffs: the deadline, not the attempt count, ends the call.
        let config = ClientConfig {
            max_attempts: 100,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(20),
            deadline: Some(Duration::from_millis(60)),
            breaker_threshold: 0,
            ..test_config()
        };
        let mut client = RpcClient::connect("127.0.0.1:1", config).expect("client");
        let started = std::time::Instant::now();
        match client.ping() {
            Err(ClientError::DeadlineExceeded { attempts, .. }) => {
                assert!(
                    attempts < 100,
                    "deadline fired before exhaustion: {attempts}"
                );
                assert!(attempts >= 1, "at least one attempt ran");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "call overran its budget: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn breaker_opens_after_threshold_then_rejects_without_io() {
        let config = ClientConfig {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(30),
            ..test_config()
        };
        let mut client = RpcClient::connect("127.0.0.1:1", config).expect("client");
        for _ in 0..2 {
            match client.ping() {
                Err(ClientError::Exhausted { .. }) => {}
                other => panic!("expected exhaustion, got {other:?}"),
            }
        }
        // Third call fails fast with the hold remaining, no network touch.
        match client.ping() {
            Err(ClientError::CircuitOpen { retry_after }) => {
                assert!(retry_after > Duration::from_secs(20), "{retry_after:?}");
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
    }

    #[test]
    fn breaker_half_open_probe_recovers_on_success() {
        use crate::frame::{read_frame, write_frame, ReadOutcome};
        use crate::proto::{encode_response, PROTOCOL_VERSION};

        // A one-shot responder: answer the first framed request with Pong.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let responder = std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                if let Ok(ReadOutcome::Frame(_)) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
                    let payload = encode_response(&Response::Pong {
                        version: PROTOCOL_VERSION,
                        s: 3,
                        records: 7,
                        degraded: false,
                    });
                    let _ = write_frame(&mut stream, &payload);
                }
            }
        });

        let config = ClientConfig {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            ..test_config()
        };
        let mut client = RpcClient::connect(addr, config).expect("client");
        // Force the breaker open as if previous calls had failed.
        client.consecutive_failures = 2;
        client.open_until = Some(std::time::Instant::now() + Duration::from_millis(20));
        match client.ping() {
            Err(ClientError::CircuitOpen { .. }) => {}
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(30));
        // Past the cooldown the probe call goes through and closes the
        // breaker; the extended Pong fields surface in ServerInfo.
        let info = client.ping().expect("half-open probe succeeds");
        assert_eq!(
            info,
            ServerInfo {
                version: PROTOCOL_VERSION,
                s: 3,
                records: 7,
                degraded: false
            }
        );
        assert_eq!(client.consecutive_failures, 0);
        assert!(client.open_until.is_none());
        responder.join().expect("responder");
    }

    fn test_record(period: u32) -> TrafficRecord {
        TrafficRecord::new(
            LocationId::new(9),
            PeriodId::new(period),
            ptm_core::params::BitmapSize::new(64).expect("pow2"),
        )
    }

    #[test]
    fn empty_pipelined_upload_is_a_local_no_op() {
        let mut client = RpcClient::connect("127.0.0.1:1", test_config()).expect("client");
        let summary = client.upload_pipelined(&[], 8).expect("empty pipeline");
        assert_eq!(
            summary,
            UploadSummary {
                accepted: 0,
                duplicates: 0
            }
        );
    }

    #[test]
    fn pipelined_upload_drains_acks_per_wave() {
        use crate::frame::{read_frame, write_frame, ReadOutcome};
        use crate::proto::encode_response;

        // A frame-for-frame responder: ack every upload it can read.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let responder = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut acked = 0u32;
            while let Ok(ReadOutcome::Frame(_)) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
                let payload = encode_response(&Response::UploadOk {
                    accepted: 1,
                    duplicates: 0,
                });
                if write_frame(&mut stream, &payload).is_err() {
                    break;
                }
                acked += 1;
            }
            acked
        });

        let mut client = RpcClient::connect(addr, test_config()).expect("client");
        let records: Vec<TrafficRecord> = (0..7).map(test_record).collect();
        let summary = client.upload_pipelined(&records, 3).expect("pipeline");
        assert_eq!(
            summary,
            UploadSummary {
                accepted: 7,
                duplicates: 0
            }
        );
        drop(client);
        assert_eq!(responder.join().expect("responder"), 7);
    }

    #[test]
    fn pipelined_upload_retries_only_the_shed_tail() {
        use crate::frame::{read_frame, write_frame, ReadOutcome};
        use crate::proto::encode_response;

        // Shed the very first frame, ack everything after it: the client
        // must retry exactly the shed record, not re-upload the acked ones.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let responder = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut seen = 0u32;
            while let Ok(ReadOutcome::Frame(_)) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
                seen += 1;
                let response = if seen == 1 {
                    Response::Overloaded { retry_after_ms: 5 }
                } else {
                    Response::UploadOk {
                        accepted: 1,
                        duplicates: 0,
                    }
                };
                if write_frame(&mut stream, &encode_response(&response)).is_err() {
                    break;
                }
            }
            seen
        });

        let mut client = RpcClient::connect(addr, test_config()).expect("client");
        let records: Vec<TrafficRecord> = (0..3).map(test_record).collect();
        let summary = client.upload_pipelined(&records, 3).expect("pipeline");
        assert_eq!(
            summary,
            UploadSummary {
                accepted: 3,
                duplicates: 0
            }
        );
        drop(client);
        // 3 frames in the first wave + 1 retried shed record.
        assert_eq!(responder.join().expect("responder"), 4);
    }

    #[test]
    fn pipelined_window_is_clamped() {
        use crate::frame::{read_frame, write_frame, ReadOutcome};
        use crate::proto::encode_response;

        // A window of 0 still makes progress (clamped up to 1).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let responder = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            while let Ok(ReadOutcome::Frame(_)) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
                let payload = encode_response(&Response::UploadOk {
                    accepted: 1,
                    duplicates: 0,
                });
                if write_frame(&mut stream, &payload).is_err() {
                    break;
                }
            }
        });
        let mut client = RpcClient::connect(addr, test_config()).expect("client");
        let records: Vec<TrafficRecord> = (0..2).map(test_record).collect();
        let summary = client.upload_pipelined(&records, 0).expect("pipeline");
        assert_eq!(summary.accepted, 2);
        drop(client);
        responder.join().expect("responder");
    }

    #[test]
    fn retry_budget_dries_up_across_calls_and_reports_it() {
        // 3 tokens against a refused port: call one burns two retries,
        // call two burns the last token and then fails on the empty
        // bucket — before its attempt cap.
        let config = ClientConfig {
            breaker_threshold: 0,
            retry_budget: 3,
            ..test_config()
        };
        let mut client = RpcClient::connect("127.0.0.1:1", config).expect("client");
        match client.ping() {
            Err(ClientError::Exhausted { attempts: 3, .. }) => {}
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(client.retry_tokens, 1);
        match client.ping() {
            Err(ClientError::Exhausted { attempts: 2, last }) => {
                assert!(
                    last.contains("retry budget exhausted"),
                    "unexpected failure detail: {last}"
                );
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        assert_eq!(client.retry_tokens, 0);
    }

    #[test]
    fn successes_refill_the_retry_budget() {
        use crate::frame::{read_frame, write_frame, ReadOutcome};
        use crate::proto::{encode_response, PROTOCOL_VERSION};

        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let responder = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            while let Ok(ReadOutcome::Frame(_)) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
                let payload = encode_response(&Response::Pong {
                    version: PROTOCOL_VERSION,
                    s: 3,
                    records: 0,
                    degraded: false,
                });
                if write_frame(&mut stream, &payload).is_err() {
                    break;
                }
            }
        });
        let config = ClientConfig {
            retry_budget: 4,
            ..test_config()
        };
        let mut client = RpcClient::connect(addr, config).expect("client");
        client.retry_tokens = 0;
        client.ping().expect("ping");
        client.ping().expect("ping");
        assert_eq!(client.retry_tokens, 2, "each success refills one token");
        drop(client);
        responder.join().expect("responder");
    }

    #[test]
    fn going_away_hand_off_reconnects_and_retries() {
        use crate::frame::{read_frame, write_frame, ReadOutcome};
        use crate::proto::{encode_response, PROTOCOL_VERSION};

        // First connection answers GoingAway and closes (a draining
        // server); the retry must arrive on a *new* connection and
        // succeed there.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let responder = std::thread::spawn(move || {
            let (mut first, _) = listener.accept().expect("accept");
            if let Ok(ReadOutcome::Frame(_)) = read_frame(&mut first, DEFAULT_MAX_FRAME_LEN) {
                let payload = encode_response(&Response::GoingAway { retry_after_ms: 5 });
                let _ = write_frame(&mut first, &payload);
            }
            drop(first);
            let (mut second, _) = listener.accept().expect("accept second");
            if let Ok(ReadOutcome::Frame(_)) = read_frame(&mut second, DEFAULT_MAX_FRAME_LEN) {
                let payload = encode_response(&Response::Pong {
                    version: PROTOCOL_VERSION,
                    s: 3,
                    records: 0,
                    degraded: false,
                });
                let _ = write_frame(&mut second, &payload);
            }
        });
        let mut client = RpcClient::connect(addr, test_config()).expect("client");
        let info = client.ping().expect("hand-off retry succeeds");
        assert_eq!(info.s, 3);
        drop(client);
        responder.join().expect("responder");
    }

    #[test]
    fn deadline_dropped_reply_is_retried_with_a_fresh_stamp() {
        use crate::frame::{read_frame, write_frame, ReadOutcome};
        use crate::proto::{decode_request, encode_response, PROTOCOL_VERSION};

        // The server dooms the first attempt; the second succeeds. Both
        // attempts must carry a deadline stamp, and the second's must not
        // exceed the first's (the budget only shrinks).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let responder = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut stamps = Vec::new();
            for turn in 0..2 {
                let Ok(ReadOutcome::Frame(bytes)) = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
                else {
                    break;
                };
                let decoded = decode_request(&bytes).expect("decode request");
                stamps.push(decoded.deadline_ms.expect("deadline stamped"));
                let response = if turn == 0 {
                    Response::DeadlineExceeded
                } else {
                    Response::Pong {
                        version: PROTOCOL_VERSION,
                        s: 3,
                        records: 0,
                        degraded: false,
                    }
                };
                if write_frame(&mut stream, &encode_response(&response)).is_err() {
                    break;
                }
            }
            stamps
        });
        let config = ClientConfig {
            deadline: Some(Duration::from_secs(30)),
            ..test_config()
        };
        let mut client = RpcClient::connect(addr, config).expect("client");
        client.ping().expect("retry after doomed reply succeeds");
        drop(client);
        let stamps = responder.join().expect("responder");
        assert_eq!(stamps.len(), 2, "both attempts stamped");
        assert!(
            stamps[1] <= stamps[0],
            "remaining budget grew across attempts: {stamps:?}"
        );
    }

    #[test]
    fn every_error_range_response_has_a_retry_classification() {
        // Mirror of the error-retryability analyze rule, exercised at
        // runtime: each is_error() variant classifies to something other
        // than Done.
        let cases = [
            Response::Error {
                code: ErrorCode::Internal,
                message: String::new(),
            },
            Response::Overloaded { retry_after_ms: 1 },
            Response::DeadlineExceeded,
            Response::GoingAway { retry_after_ms: 1 },
        ];
        for response in cases {
            assert!(response.is_error());
            assert!(
                !matches!(classify_response(&response), Disposition::Done),
                "error-range response classified Done: {response:?}"
            );
        }
    }

    #[test]
    fn retryable_io_classification() {
        assert!(retryable_io(io::ErrorKind::ConnectionRefused));
        assert!(retryable_io(io::ErrorKind::TimedOut));
        assert!(retryable_io(io::ErrorKind::UnexpectedEof));
        assert!(!retryable_io(io::ErrorKind::PermissionDenied));
        assert!(!retryable_io(io::ErrorKind::InvalidData));
    }
}
