//! RSU-to-server upload channel for persistent traffic measurement.
//!
//! The paper's architecture ends with roadside units shipping their
//! per-period traffic records to a central server that answers persistence
//! queries. This crate is that wire: a std-only (no async runtime) TCP
//! daemon and client speaking a versioned, length-prefixed, CRC-checked
//! frame protocol.
//!
//! * [`frame`] — the transport: `len | crc32 | payload` frames, with an
//!   idle/closed/hard-error taxonomy that lets servers poll shutdown flags
//!   and clients classify retryability. [`FrameDecoder`] is the zero-copy
//!   nonblocking half: one reusable buffer per connection, complete frames
//!   decoded in place with no per-frame allocation in steady state, and
//!   [`frame::append_frame_with`] / [`frame::write_frame_vectored`] the
//!   matching write-side buffer reuse.
//! * [`proto`] — the messages: version-tagged requests (ping, upload,
//!   batch upload, volume/point/point-to-point queries) and responses,
//!   embedding records as exact `ptm-store` codec payloads so the bytes a
//!   daemon archives are the bytes the RSU sent.
//! * [`server`] — [`RpcServer`]: a readiness-driven reactor daemon — one
//!   event-loop thread owns every connection's nonblocking socket and
//!   buffers, and a bounded worker pool runs estimate/commit work so slow
//!   storage never stalls the wire — wrapping
//!   [`ptm_net::CentralServer`]'s location-sharded store, write-ahead
//!   persistence into a [`ptm_store::Archive`] (append + flush before the
//!   records become queryable, replayed on restart), idempotent duplicate
//!   handling, panic containment with poison-recovering locks, graceful
//!   drain on shutdown. Consecutive pipelined uploads from one connection
//!   coalesce into a single commit and their acks batch into one write.
//!   Queries run concurrently with each other and with uploads to
//!   locations they are not reading.
//! * [`cache`] — [`QueryCache`]: a bounded, epoch-invalidated cache of
//!   query answers; an upload to one location invalidates only that
//!   location's cached answers, and cached answers stay bit-for-bit
//!   identical to freshly computed ones.
//! * [`client`] — [`RpcClient`]: capped exponential backoff with jitter,
//!   a retryable-versus-fatal error split, batch upload, a per-call
//!   deadline budget, and a circuit breaker that honors the server's
//!   `retry_after_ms` shed hints.
//!
//! The daemon protects itself under load and backend failure instead of
//! queueing without bound: a connection cap and a per-location in-flight
//! estimate gate shed excess work with an explicit `Overloaded` response,
//! and ingest drops to a degraded (read-only) mode when the archive
//! backend keeps failing — queries stay up, uploads are shed until a
//! cooldown-gated reopen probe succeeds. Deterministic fault injection for
//! all of this comes from `ptm-fault` via
//! [`ServerConfig::fault_plan`](server::ServerConfig); see
//! `docs/FAULTS.md`.
//!
//! Everything is instrumented through `ptm-obs` under the `rpc.server.*`,
//! `rpc.client.*`, `rpc.shard.*`, `rpc.shed.*`, and `rpc.cache.*` metric
//! prefixes; see `docs/RPC.md` and `docs/OBSERVABILITY.md` for the full
//! protocol and metric reference.
//!
//! # Example (loopback round trip)
//!
//! ```
//! use ptm_rpc::{ClientConfig, RpcClient, RpcServer, ServerConfig};
//!
//! let archive = std::env::temp_dir().join(format!("ptm-rpc-doc-{}.ptma", std::process::id()));
//! # let _ = std::fs::remove_file(&archive);
//! let server = RpcServer::start("127.0.0.1:0", &archive, ServerConfig::default()).unwrap();
//! let mut client = RpcClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! let info = client.ping().unwrap();
//! assert_eq!(info.version, ptm_rpc::PROTOCOL_VERSION);
//! server.shutdown().unwrap();
//! # let _ = std::fs::remove_file(&archive);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A panicking daemon thread must be a contained, answerable event, never a
// crash: non-test code in this crate handles its errors instead of
// unwrapping them (CI enforces this with `-D clippy::unwrap_used
// -D clippy::expect_used` scoped to this crate).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod client;
pub mod frame;
pub mod proto;
mod reactor;
pub mod server;

pub use cache::{QueryCache, QueryKey};
pub use client::{
    ClientConfig, ClientError, RpcClient, ServerInfo, UploadSummary, MAX_PIPELINE_WINDOW,
};
pub use frame::{
    append_frame_with, read_frame, read_frame_with_stall, write_frame, write_frame_vectored,
    FrameDecoder, FrameError, ReadOutcome, DEFAULT_MAX_FRAME_LEN, FRAME_HEADER_LEN,
};
pub use proto::{ErrorCode, ProtoError, Request, Response, PROTOCOL_VERSION};
pub use server::{DaemonError, ReplayReport, RpcServer, ServerConfig};
