//! Epoch-invalidated query-result cache.
//!
//! Point, volume, and point-to-point estimates are pure functions of the
//! records stored for the locations they read. `ptm_net::CentralServer`
//! bumps a per-location **epoch** once per accepted record, so a cached
//! answer tagged with the epochs observed *before* it was computed stays
//! bit-for-bit exact while those epochs are unchanged — and an upload to
//! one location invalidates only that location's cached answers, never its
//! neighbours'.
//!
//! Invalidation is lazy: nothing is purged on upload (the hot ingest path
//! never touches the cache); instead a lookup re-checks the entry's
//! recorded epochs against the store and drops the entry the moment they
//! disagree. The caller must capture the epochs **before** computing the
//! answer it stores — tagging an answer with epochs read after the
//! computation could mark a stale answer as fresh if an upload landed
//! mid-computation; the conservative order can only cause a spurious
//! recomputation.
//!
//! Capacity is bounded; inserting into a full cache evicts the oldest
//! entry (insertion order). Metrics: `rpc.cache.hits`, `rpc.cache.misses`,
//! `rpc.cache.stale` (entries dropped by an epoch mismatch on lookup),
//! `rpc.cache.insertions`, `rpc.cache.evictions`, and the gauge
//! `rpc.cache.entries`.

use ptm_core::{LocationId, PeriodId};
use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, PoisonError};

/// Identifies one cacheable query, including every parameter that affects
/// its answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QueryKey {
    /// Traffic volume at one location in one period.
    Volume {
        /// Queried location.
        location: LocationId,
        /// Queried period.
        period: PeriodId,
    },
    /// Point persistent traffic over a period list.
    Point {
        /// Queried location.
        location: LocationId,
        /// Queried periods, in request order (order matters: it is part of
        /// the request, and reordering could change float summation).
        periods: Vec<PeriodId>,
    },
    /// Point-to-point persistent traffic over a period list.
    P2p {
        /// First endpoint.
        location_a: LocationId,
        /// Second endpoint.
        location_b: LocationId,
        /// Queried periods, in request order.
        periods: Vec<PeriodId>,
    },
}

impl QueryKey {
    /// The locations whose records the query reads — exactly the epochs a
    /// cached answer depends on.
    pub fn locations(&self) -> Vec<LocationId> {
        match self {
            Self::Volume { location, .. } | Self::Point { location, .. } => vec![*location],
            Self::P2p {
                location_a,
                location_b,
                ..
            } => vec![*location_a, *location_b],
        }
    }
}

#[derive(Debug)]
struct CachedAnswer {
    value: f64,
    /// The involved locations' epochs, captured before the answer was
    /// computed.
    epochs: Vec<(LocationId, u64)>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<QueryKey, CachedAnswer>,
    /// Insertion order, oldest first; drives eviction at capacity.
    order: VecDeque<QueryKey>,
}

/// A bounded, epoch-invalidated cache of query answers.
///
/// Thread-safe; the internal lock recovers from poisoning (a panicking
/// handler must not take the cache down with it — worst case the cache
/// holds a few entries whose epochs no longer match, which the lookup
/// validation discards).
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` answers. Zero disables
    /// caching entirely (every lookup misses, every store is a no-op).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner
            // ptm-analyze: allow(reactor-blocking): QueryCache lives on pool workers (answer_cached); the reactor edge is `conns.insert` (HashMap) aliasing `QueryCache::insert`
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached answer for `key` if every involved location's
    /// epoch (per `epoch_of`) still matches the epochs the answer was
    /// computed under. A mismatched entry is dropped (counted as
    /// `rpc.cache.stale`) and reported as a miss.
    pub fn lookup(&self, key: &QueryKey, epoch_of: impl Fn(LocationId) -> u64) -> Option<f64> {
        if self.capacity == 0 {
            ptm_obs::counter!("rpc.cache.misses").inc();
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let valid = match inner.entries.get(key) {
            None => {
                ptm_obs::counter!("rpc.cache.misses").inc();
                return None;
            }
            Some(cached) => cached
                .epochs
                .iter()
                .all(|&(loc, epoch)| epoch_of(loc) == epoch),
        };
        if valid {
            ptm_obs::counter!("rpc.cache.hits").inc();
            return inner.entries.get(key).map(|cached| cached.value);
        }
        inner.entries.remove(key);
        inner.order.retain(|k| k != key);
        ptm_obs::counter!("rpc.cache.stale").inc();
        ptm_obs::counter!("rpc.cache.misses").inc();
        ptm_obs::gauge!("rpc.cache.entries").set(inner.entries.len() as i64);
        None
    }

    /// Caches `value` for `key`, tagged with the epochs captured *before*
    /// the value was computed. Evicts the oldest entry at capacity.
    pub fn store(&self, key: QueryKey, value: f64, epochs: Vec<(LocationId, u64)>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner
            .entries
            .insert(key.clone(), CachedAnswer { value, epochs })
            .is_none()
        {
            while inner.entries.len() > self.capacity {
                match inner.order.pop_front() {
                    Some(oldest) => {
                        inner.entries.remove(&oldest);
                        ptm_obs::counter!("rpc.cache.evictions").inc();
                    }
                    None => break,
                }
            }
            inner.order.push_back(key);
        }
        ptm_obs::counter!("rpc.cache.insertions").inc();
        ptm_obs::gauge!("rpc.cache.entries").set(inner.entries.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn loc(id: u64) -> LocationId {
        LocationId::new(id)
    }

    fn point_key(location: u64, periods: &[u32]) -> QueryKey {
        QueryKey::Point {
            location: loc(location),
            periods: periods.iter().copied().map(PeriodId::new).collect(),
        }
    }

    #[test]
    fn hit_while_epochs_unchanged() {
        let cache = QueryCache::new(8);
        let key = point_key(1, &[0, 1, 2]);
        let epochs = vec![(loc(1), 3)];
        assert_eq!(cache.lookup(&key, |_| 3), None, "cold cache");
        cache.store(key.clone(), 42.5, epochs);
        assert_eq!(cache.lookup(&key, |_| 3), Some(42.5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_change_invalidates_only_that_location() {
        let cache = QueryCache::new(8);
        let key_a = point_key(1, &[0, 1]);
        let key_b = point_key(2, &[0, 1]);
        let mut epochs: HashMap<LocationId, u64> = HashMap::new();
        epochs.insert(loc(1), 1);
        epochs.insert(loc(2), 1);
        cache.store(key_a.clone(), 10.0, vec![(loc(1), 1)]);
        cache.store(key_b.clone(), 20.0, vec![(loc(2), 1)]);

        // An upload to location 1 bumps its epoch; location 2 is untouched.
        epochs.insert(loc(1), 2);
        assert_eq!(cache.lookup(&key_a, |l| epochs[&l]), None, "stale");
        assert_eq!(
            cache.lookup(&key_b, |l| epochs[&l]),
            Some(20.0),
            "unaffected"
        );
        assert_eq!(cache.len(), 1, "stale entry dropped");
    }

    #[test]
    fn p2p_depends_on_both_endpoints() {
        let cache = QueryCache::new(8);
        let key = QueryKey::P2p {
            location_a: loc(1),
            location_b: loc(2),
            periods: vec![PeriodId::new(0)],
        };
        assert_eq!(key.locations(), vec![loc(1), loc(2)]);
        cache.store(key.clone(), 7.0, vec![(loc(1), 1), (loc(2), 1)]);
        assert_eq!(cache.lookup(&key, |_| 1), Some(7.0));
        // Either endpoint moving invalidates.
        assert_eq!(
            cache.lookup(&key, |l| if l == loc(2) { 2 } else { 1 }),
            None
        );
    }

    #[test]
    fn distinct_period_lists_are_distinct_keys() {
        let cache = QueryCache::new(8);
        cache.store(point_key(1, &[0, 1]), 1.0, vec![(loc(1), 1)]);
        cache.store(point_key(1, &[0, 1, 2]), 2.0, vec![(loc(1), 1)]);
        cache.store(point_key(1, &[1, 0]), 3.0, vec![(loc(1), 1)]);
        assert_eq!(cache.lookup(&point_key(1, &[0, 1]), |_| 1), Some(1.0));
        assert_eq!(cache.lookup(&point_key(1, &[0, 1, 2]), |_| 1), Some(2.0));
        assert_eq!(cache.lookup(&point_key(1, &[1, 0]), |_| 1), Some(3.0));
    }

    #[test]
    fn capacity_bounds_the_cache_with_fifo_eviction() {
        let cache = QueryCache::new(2);
        cache.store(point_key(1, &[0]), 1.0, vec![(loc(1), 1)]);
        cache.store(point_key(2, &[0]), 2.0, vec![(loc(2), 1)]);
        cache.store(point_key(3, &[0]), 3.0, vec![(loc(3), 1)]);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.lookup(&point_key(1, &[0]), |_| 1),
            None,
            "oldest evicted"
        );
        assert_eq!(cache.lookup(&point_key(2, &[0]), |_| 1), Some(2.0));
        assert_eq!(cache.lookup(&point_key(3, &[0]), |_| 1), Some(3.0));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0);
        cache.store(point_key(1, &[0]), 1.0, vec![(loc(1), 1)]);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&point_key(1, &[0]), |_| 1), None);
    }

    #[test]
    fn restore_of_existing_key_updates_value_in_place() {
        let cache = QueryCache::new(2);
        let key = point_key(1, &[0]);
        cache.store(key.clone(), 1.0, vec![(loc(1), 1)]);
        cache.store(key.clone(), 2.0, vec![(loc(1), 2)]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key, |_| 2), Some(2.0));
    }

    #[test]
    fn poisoned_cache_lock_recovers() {
        let cache = QueryCache::new(4);
        cache.store(point_key(1, &[0]), 1.0, vec![(loc(1), 1)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.inner.lock().expect("not yet poisoned");
            panic!("injected");
        }));
        assert!(result.is_err());
        assert_eq!(cache.lookup(&point_key(1, &[0]), |_| 1), Some(1.0));
        cache.store(point_key(2, &[0]), 2.0, vec![(loc(2), 1)]);
        assert_eq!(cache.len(), 2);
    }
}
