//! The record-ingest daemon: a thread-per-connection TCP server wrapping
//! [`ptm_net::CentralServer`] with write-ahead persistence.
//!
//! Lifecycle:
//!
//! 1. **Startup** — open (or create) the [`ptm_store::Archive`] at the
//!    configured path and replay every archived record into the in-memory
//!    query engine, so a restarted daemon answers queries identically.
//! 2. **Ingest** — each accepted record is appended to the archive and
//!    flushed *before* the ack frame is written (write-ahead). An identical
//!    re-send of an already-stored record is acked as an idempotent
//!    duplicate without touching the archive, which is what makes the
//!    client's at-least-once retry loop safe.
//! 3. **Shutdown** — [`RpcServer::shutdown`] stops the accept loop, drains
//!    every connection thread (in-flight requests finish; the per-frame
//!    read timeout bounds the wait), then flushes and fsyncs the archive.
//!
//! Misbehaving peers never take the daemon down: oversized, corrupt, or
//! truncated frames close that one connection (after a best-effort error
//! response) and bump `rpc.server.frames.bad`.

use crate::frame::{read_frame, write_frame, FrameError, ReadOutcome, DEFAULT_MAX_FRAME_LEN};
use crate::proto::{
    decode_request, encode_response, ErrorCode, ProtoError, Request, Response, PROTOCOL_VERSION,
};
use ptm_core::record::TrafficRecord;
use ptm_net::server::ServerError;
use ptm_net::CentralServer;
use ptm_store::{Archive, StoreError};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`RpcServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Representative-bit count `s` for the point-to-point estimator.
    pub s: u32,
    /// Idle cutoff: a connection that sends no frame for this long is
    /// closed.
    pub read_timeout: Duration,
    /// Granularity at which blocked reads and the accept loop re-check the
    /// shutdown flag.
    pub poll_interval: Duration,
    /// Largest accepted frame payload, in bytes.
    pub max_frame_len: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            s: 3,
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Errors starting or stopping the daemon.
#[derive(Debug)]
pub enum DaemonError {
    /// Socket-level failure (bind, accept-thread spawn).
    Io(io::Error),
    /// The archive could not be opened, replayed, or flushed.
    Store(StoreError),
    /// The archive replays records the query engine rejects — two archived
    /// records claim the same `(location, period)` with different bits.
    ReplayConflict(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "daemon i/o error: {err}"),
            Self::Store(err) => write!(f, "daemon archive error: {err}"),
            Self::ReplayConflict(detail) => write!(f, "archive replay conflict: {detail}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Store(err) => Some(err),
            Self::ReplayConflict(_) => None,
        }
    }
}

impl From<io::Error> for DaemonError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<StoreError> for DaemonError {
    fn from(err: StoreError) -> Self {
        Self::Store(err)
    }
}

/// What startup recovered from the archive.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Records replayed into the query engine.
    pub records: usize,
    /// Bytes discarded from a torn final frame (0 after a clean shutdown).
    pub torn_bytes: u64,
}

struct State {
    central: CentralServer,
    archive: Archive,
}

struct Shared {
    state: Mutex<State>,
    shutdown: AtomicBool,
    config: ServerConfig,
}

/// A running daemon. Dropping it without calling [`RpcServer::shutdown`]
/// detaches the accept thread (the process keeps serving); tests and the
/// CLI always shut down explicitly.
pub struct RpcServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    replay: ReplayReport,
    archive_path: PathBuf,
}

impl RpcServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), replays the archive at `path`
    /// (creating it if absent), and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Bind failures, archive corruption, or replay conflicts.
    pub fn start(
        addr: impl ToSocketAddrs,
        archive_path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> Result<Self, DaemonError> {
        let archive_path = archive_path.as_ref().to_path_buf();
        let mut central = CentralServer::new(config.s);
        let (archive, replay) = if archive_path.exists() {
            let recovered = Archive::open(&archive_path)?;
            let report = ReplayReport {
                records: recovered.records.len(),
                torn_bytes: recovered.torn_bytes,
            };
            for record in recovered.records {
                let key = (record.location(), record.period());
                central.submit(record).map_err(|err| {
                    DaemonError::ReplayConflict(format!(
                        "location {} period {}: {err}",
                        key.0.get(),
                        key.1.get()
                    ))
                })?;
            }
            (recovered.archive, report)
        } else {
            (Archive::create(&archive_path)?, ReplayReport { records: 0, torn_bytes: 0 })
        };
        if replay.torn_bytes > 0 {
            ptm_obs::warn!("rpc.server", "archive had a torn tail";
                torn_bytes = replay.torn_bytes, path = archive_path.display().to_string());
        }
        ptm_obs::counter!("rpc.server.replay.records").add(replay.records as u64);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            state: Mutex::new(State { central, archive }),
            shutdown: AtomicBool::new(false),
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("ptm-rpc-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        ptm_obs::info!("rpc.server", "daemon listening";
            addr = local_addr.to_string(),
            replayed = replay.records,
            archive = archive_path.display().to_string());
        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            replay,
            archive_path,
        })
    }

    /// The bound socket address (useful after binding port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// What startup recovered from the archive.
    pub fn replay_report(&self) -> ReplayReport {
        self.replay
    }

    /// The archive file backing this daemon.
    pub fn archive_path(&self) -> &Path {
        &self.archive_path
    }

    /// Records currently held by the query engine.
    pub fn record_count(&self) -> usize {
        self.shared.state.lock().expect("state lock").central.record_count()
    }

    /// Graceful shutdown: stop accepting, drain every connection thread,
    /// then flush and fsync the archive.
    ///
    /// # Errors
    ///
    /// Archive flush/sync failures (connections are already drained).
    pub fn shutdown(mut self) -> Result<(), DaemonError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let mut state = self.shared.state.lock().expect("state lock");
        state.archive.sync()?;
        ptm_obs::info!("rpc.server", "daemon stopped";
            records = state.central.record_count());
        Ok(())
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                ptm_obs::counter!("rpc.server.connections.accepted").inc();
                ptm_obs::debug!("rpc.server", "connection accepted"; peer = peer.to_string());
                let conn_shared = Arc::clone(&shared);
                match std::thread::Builder::new()
                    .name("ptm-rpc-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared))
                {
                    Ok(handle) => connections.push(handle),
                    Err(err) => {
                        ptm_obs::error!("rpc.server", "spawn failed"; error = err.to_string());
                    }
                }
                // Opportunistically reap finished connections so a
                // long-lived daemon does not accumulate handles.
                connections.retain(|h| !h.is_finished());
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => {
                ptm_obs::error!("rpc.server", "accept failed"; error = err.to_string());
                std::thread::sleep(shared.config.poll_interval);
            }
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut last_frame = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_frame(&mut stream, shared.config.max_frame_len) {
            Ok(ReadOutcome::Idle) => {
                if last_frame.elapsed() > shared.config.read_timeout {
                    ptm_obs::counter!("rpc.server.connections.idle_timeout").inc();
                    break;
                }
            }
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Frame(payload)) => {
                last_frame = Instant::now();
                ptm_obs::counter!("rpc.server.frames.in").inc();
                ptm_obs::counter!("rpc.server.bytes.in").add(payload.len() as u64 + 8);
                let (response, close) = dispatch(&payload, &shared);
                if !respond(&mut stream, &response) || close {
                    break;
                }
            }
            Err(err) => {
                ptm_obs::counter!("rpc.server.frames.bad").inc();
                ptm_obs::warn!("rpc.server", "bad frame"; error = err.to_string());
                // Best-effort error response; the connection closes either
                // way, so a peer stuck mid-frame is simply dropped.
                if !matches!(err, FrameError::Io(_)) {
                    let response = Response::Error {
                        code: ErrorCode::Malformed,
                        message: err.to_string(),
                    };
                    respond(&mut stream, &response);
                }
                break;
            }
        }
    }
    ptm_obs::counter!("rpc.server.connections.closed").inc();
}

/// Writes a response frame; returns false when the connection is dead.
fn respond(stream: &mut TcpStream, response: &Response) -> bool {
    let payload = encode_response(response);
    match write_frame(stream, &payload) {
        Ok(()) => {
            ptm_obs::counter!("rpc.server.frames.out").inc();
            ptm_obs::counter!("rpc.server.bytes.out").add(payload.len() as u64 + 8);
            true
        }
        Err(err) => {
            ptm_obs::debug!("rpc.server", "response write failed"; error = err.to_string());
            false
        }
    }
}

/// Handles one decoded frame; returns the response and whether the
/// connection must close afterwards.
fn dispatch(payload: &[u8], shared: &Shared) -> (Response, bool) {
    let request = match decode_request(payload) {
        Ok(request) => request,
        Err(ProtoError::VersionMismatch { got, want }) => {
            ptm_obs::counter!("rpc.server.version_mismatch").inc();
            return (
                Response::Error {
                    code: ErrorCode::VersionMismatch,
                    message: format!("client speaks version {got}, server speaks {want}"),
                },
                true,
            );
        }
        Err(err) => {
            ptm_obs::counter!("rpc.server.decode_errors").inc();
            return (
                Response::Error { code: ErrorCode::Malformed, message: err.to_string() },
                true,
            );
        }
    };
    let response = match request {
        Request::Ping => {
            Response::Pong { version: PROTOCOL_VERSION, s: shared.config.s }
        }
        Request::Upload(record) => ingest(shared, vec![record]),
        Request::UploadBatch(records) => ingest(shared, records),
        Request::QueryVolume { location, period } => {
            ptm_obs::counter!("rpc.server.queries").inc();
            let state = shared.state.lock().expect("state lock");
            estimate_response(state.central.estimate_volume(location, period))
        }
        Request::QueryPoint { location, periods } => {
            ptm_obs::counter!("rpc.server.queries").inc();
            let state = shared.state.lock().expect("state lock");
            estimate_response(state.central.estimate_point_persistent(location, &periods))
        }
        Request::QueryP2p { location_a, location_b, periods } => {
            ptm_obs::counter!("rpc.server.queries").inc();
            let state = shared.state.lock().expect("state lock");
            estimate_response(state.central.estimate_p2p_persistent(
                location_a,
                location_b,
                &periods,
            ))
        }
    };
    (response, false)
}

fn estimate_response(result: Result<f64, ServerError>) -> Response {
    match result {
        Ok(value) => Response::Estimate(value),
        Err(err @ ServerError::MissingRecord { .. }) => {
            Response::Error { code: ErrorCode::MissingRecord, message: err.to_string() }
        }
        Err(err @ ServerError::Estimate(_)) => {
            Response::Error { code: ErrorCode::EstimateFailed, message: err.to_string() }
        }
        Err(err) => Response::Error { code: ErrorCode::Internal, message: err.to_string() },
    }
}

/// The write-ahead ingest path: validate the whole batch against the query
/// engine, persist every fresh record with a single flush, then ack.
/// A conflicting duplicate anywhere in the batch rejects the batch whole —
/// nothing is applied, so a client retry cannot half-apply.
fn ingest(shared: &Shared, records: Vec<TrafficRecord>) -> Response {
    let _t = ptm_obs::span!("rpc.server.ingest");
    let mut state = shared.state.lock().expect("state lock");
    let mut fresh: Vec<TrafficRecord> = Vec::with_capacity(records.len());
    let mut duplicates = 0u32;
    for record in records {
        let key = (record.location(), record.period());
        match state.central.record(key.0, key.1) {
            Some(existing) if *existing == record => duplicates += 1,
            Some(_) => {
                ptm_obs::counter!("rpc.server.ingest.conflicts").inc();
                return Response::Error {
                    code: ErrorCode::DuplicateConflict,
                    message: format!(
                        "location {} period {} already holds different contents",
                        key.0.get(),
                        key.1.get()
                    ),
                };
            }
            None => {
                // A batch may legitimately not repeat a key; a key repeated
                // *within* this batch with different contents is a conflict
                // too, caught by submit() below on the second occurrence.
                fresh.push(record);
            }
        }
    }
    // Apply: query engine first (it re-checks intra-batch conflicts), then
    // the archive, then the ack. Nothing is acked before it is on disk.
    let mut accepted: Vec<TrafficRecord> = Vec::with_capacity(fresh.len());
    for record in fresh {
        match state.central.submit(record.clone()) {
            Ok(()) => accepted.push(record),
            Err(ServerError::DuplicateRecord { location, period }) => {
                ptm_obs::counter!("rpc.server.ingest.conflicts").inc();
                return Response::Error {
                    code: ErrorCode::DuplicateConflict,
                    message: format!(
                        "location {} period {} repeated within one batch with different \
                         contents",
                        location.get(),
                        period.get()
                    ),
                };
            }
            Err(err) => {
                return Response::Error { code: ErrorCode::Internal, message: err.to_string() }
            }
        }
    }
    if let Err(err) = state.archive.append_all(accepted.iter()) {
        ptm_obs::error!("rpc.server", "archive append failed"; error = err.to_string());
        return Response::Error { code: ErrorCode::Storage, message: err.to_string() };
    }
    ptm_obs::counter!("rpc.server.ingest.accepted").add(accepted.len() as u64);
    ptm_obs::counter!("rpc.server.ingest.duplicates").add(duplicates as u64);
    Response::UploadOk { accepted: accepted.len() as u32, duplicates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use ptm_core::record::PeriodId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn temp_archive(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ptm-rpc-server-{}-{name}.ptma", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_record(location: u64, period: u32) -> TrafficRecord {
        let scheme = EncodingScheme::new(7, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(u64::from(period) + location * 31);
        let mut record = TrafficRecord::new(
            LocationId::new(location),
            PeriodId::new(period),
            BitmapSize::new(512).expect("pow2"),
        );
        for _ in 0..40 {
            let v = VehicleSecrets::generate(&mut rng, 3);
            record.encode(&scheme, &v);
        }
        record
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn start_serve_shutdown_and_replay() {
        let path = temp_archive("lifecycle");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();

        // Drive the daemon with raw frames (the client crate is tested
        // separately): upload two records, then re-send one identically.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        for (record, want_accepted, want_dup) in [
            (sample_record(1, 0), 1u32, 0u32),
            (sample_record(1, 1), 1, 0),
            (sample_record(1, 0), 0, 1),
        ] {
            let payload = crate::proto::encode_request(&Request::Upload(record));
            write_frame(&mut stream, &payload).expect("write");
            let response = match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("read") {
                ReadOutcome::Frame(bytes) => {
                    crate::proto::decode_response(&bytes).expect("decode")
                }
                other => panic!("expected frame, got {other:?}"),
            };
            assert_eq!(
                response,
                Response::UploadOk { accepted: want_accepted, duplicates: want_dup }
            );
        }
        drop(stream);
        assert_eq!(server.record_count(), 2);
        server.shutdown().expect("shutdown");

        // Restart on the same archive: records replay from disk.
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("restart");
        assert_eq!(server.replay_report().records, 2);
        assert_eq!(server.record_count(), 2);
        server.shutdown().expect("shutdown");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn conflicting_duplicate_rejected_and_not_archived() {
        let path = temp_archive("conflict");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");

        let original = sample_record(4, 0);
        let mut conflicting = sample_record(4, 0);
        conflicting.set_reported_index(0);
        conflicting.set_reported_index(1);
        assert_ne!(original, conflicting);

        for (record, want_err) in [(original, false), (conflicting, true)] {
            let payload = crate::proto::encode_request(&Request::Upload(record));
            write_frame(&mut stream, &payload).expect("write");
            let response = match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("read") {
                ReadOutcome::Frame(bytes) => {
                    crate::proto::decode_response(&bytes).expect("decode")
                }
                other => panic!("expected frame, got {other:?}"),
            };
            if want_err {
                assert!(
                    matches!(
                        response,
                        Response::Error { code: ErrorCode::DuplicateConflict, .. }
                    ),
                    "{response:?}"
                );
            } else {
                assert_eq!(response, Response::UploadOk { accepted: 1, duplicates: 0 });
            }
        }
        server.shutdown().expect("shutdown");
        // Only the first record reached the archive.
        let recovered = Archive::open(&path).expect("open");
        assert_eq!(recovered.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_frame_closes_connection_but_not_daemon() {
        let path = temp_archive("garbage");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();

        // A frame whose checksum cannot match.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        use std::io::Write;
        let mut junk = Vec::new();
        junk.extend_from_slice(&4u32.to_le_bytes());
        junk.extend_from_slice(&0u32.to_le_bytes());
        junk.extend_from_slice(&[1, 2, 3, 4]);
        stream.write_all(&junk).expect("write junk");
        // The server answers with a malformed-error frame and closes.
        match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
            Ok(ReadOutcome::Frame(bytes)) => {
                let response = crate::proto::decode_response(&bytes).expect("decode");
                assert!(
                    matches!(response, Response::Error { code: ErrorCode::Malformed, .. }),
                    "{response:?}"
                );
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        drop(stream);

        // The daemon still serves a healthy client afterwards.
        let mut stream = TcpStream::connect(addr).expect("reconnect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let payload = crate::proto::encode_request(&Request::Ping);
        write_frame(&mut stream, &payload).expect("write");
        match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(bytes) => {
                let response = crate::proto::decode_response(&bytes).expect("decode");
                assert_eq!(response, Response::Pong { version: PROTOCOL_VERSION, s: 3 });
            }
            other => panic!("expected pong, got {other:?}"),
        }
        server.shutdown().expect("shutdown");
        std::fs::remove_file(&path).ok();
    }
}
