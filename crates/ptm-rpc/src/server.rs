//! The record-ingest daemon: a readiness-driven reactor wrapping
//! [`ptm_net::CentralServer`] with write-ahead persistence.
//!
//! One event-loop thread owns the nonblocking listener and every
//! connection's socket, read decoder, and write buffer; a bounded worker
//! pool runs the estimate/commit work so a slow disk or an expensive
//! query never stalls the wire. Connection scale is bounded by file
//! descriptors and per-connection buffers, not OS threads.
//!
//! Lifecycle:
//!
//! 1. **Startup** — open (or create) the [`ptm_store::SegmentStore`] at
//!    the configured path (transparently migrating a v1 single-file
//!    archive into a segment directory first). Startup is **O(index)**:
//!    the store reads its manifest and per-segment footer indexes instead
//!    of decoding every record, and records are *hydrated* into the
//!    in-memory query engine lazily, per location, the first time ingest
//!    validation or a query touches that location — so a restarted daemon
//!    still answers queries identically, it just loads each location's
//!    history on first touch instead of all of it up front.
//! 2. **Ingest** — each accepted batch is validated whole, appended to the
//!    archive and flushed, *then* published to the query engine, and only
//!    then acked (write-ahead). An identical re-send of an already-stored
//!    record is acked as an idempotent duplicate without touching the
//!    archive, which is what makes the client's at-least-once retry loop
//!    safe.
//! 3. **Shutdown** — [`RpcServer::shutdown`] stops the event loop, waits
//!    for in-flight jobs to finish (bounded), flushes their replies, then
//!    flushes and fsyncs the archive.
//!
//! # The wire path
//!
//! The reactor sweeps every connection each loop iteration: a nonblocking
//! read *is* the readiness check on a std-only build (no `epoll` without
//! `unsafe`), and the sweep cost is what the 1k-connection smoke test
//! bounds. Each connection owns a reusable [`FrameDecoder`] — frames are
//! CRC-checked and decoded **in place**, with no per-frame allocation in
//! steady state — and a reusable output buffer that accumulates any
//! number of reply frames ([`append_frame_with`]) before a single write,
//! which is what batches acks across a client's pipelined uploads.
//! Consecutive upload frames queued on one connection coalesce into a
//! single worker job and a single archive commit; replies stay in request
//! order per connection because a connection has at most one job in
//! flight at a time.
//!
//! # Concurrency
//!
//! The query engine is [`ptm_net::CentralServer`]'s per-location sharded
//! store, so read-only estimate queries run **concurrently** — with each
//! other and with uploads to locations they are not reading — across the
//! [`ServerConfig::workers`] pool threads. Uploads go through a dedicated
//! **writer path**: one mutex guarding the segment store serializes
//! ingest (appends go to a single active segment, so writes serialize
//! anyway) and doubles as the batch-atomicity lock — a batch is
//! validated and applied under it, so a conflict anywhere rejects the
//! batch whole and a retry can never half-apply. Queries touch the
//! writer path only for a location's *first* read (lazy hydration); after
//! that, archive I/O is out of the estimation path entirely. A background
//! maintenance thread compacts small/superseded segments and, while
//! degraded, retries the store reopen automatically under the configured
//! cooldown.
//!
//! # Shedding
//!
//! At the connection cap, new sockets are accepted into a bounded *shed*
//! backlog instead of being answered inline on the accept path (which
//! used to stall every other accept behind one slow peer). A shed
//! connection costs no worker and sends nothing unsolicited; when its
//! first frame arrives, the reactor peeks the protocol version and
//! answers `Overloaded` encoded no newer than the peer speaks — or, for a
//! v1 peer (whose decoder predates the `Overloaded` tag), closes cleanly
//! without a byte, which its retry loop handles as a transport error.
//! Beyond the backlog bound, excess sockets are dropped immediately.
//!
//! Query answers are cached in an epoch-invalidated [`QueryCache`]: each
//! accepted record bumps its location's epoch, and a cached answer is
//! served only while the epochs of every location it reads are unchanged —
//! which keeps cached answers bit-for-bit identical to freshly computed
//! ones.
//!
//! Misbehaving peers never take the daemon down: oversized, corrupt, or
//! truncated frames close that one connection (after a best-effort error
//! response) and bump `rpc.server.frames.bad`. A *panicking* request
//! handler is caught (`rpc.server.panics`), answered with an `Internal`
//! error frame, and every lock in the daemon recovers from poisoning — one
//! bad request must never turn into a whole-daemon outage.

use crate::cache::{QueryCache, QueryKey};
use crate::frame::{append_frame_with, FrameDecoder, FrameError, DEFAULT_MAX_FRAME_LEN};
use crate::proto::{
    decode_request, encode_response_into, peek_version, ErrorCode, ProtoError, Request, Response,
    WireTrace, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::reactor::{JobClass, WorkerPool, CLASS_COUNT};
use ptm_core::record::TrafficRecord;
use ptm_core::{LocationId, PeriodId};
use ptm_fault::{sites, FaultAction, FaultPlan, FaultyStream, SiteHandle};
use ptm_net::server::ServerError;
use ptm_net::CentralServer;
use ptm_store::{SegmentStore, StoreError, StoreHooks, StoreOptions, SyncPolicy};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`RpcServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Representative-bit count `s` for the point-to-point estimator.
    pub s: u32,
    /// Idle cutoff: a connection that sends no frame for this long is
    /// closed. Also the stall budget for a frame arriving in pieces: a
    /// peer mid-frame may pause up to this long in total before the
    /// connection is declared stalled.
    pub read_timeout: Duration,
    /// Granularity at which blocked reads and the accept loop re-check the
    /// shutdown flag.
    pub poll_interval: Duration,
    /// Largest accepted frame payload, in bytes.
    pub max_frame_len: u32,
    /// Entries held by the epoch-invalidated query-result cache; 0
    /// disables caching.
    pub cache_capacity: usize,
    /// Connections served concurrently before new ones are shed (answered
    /// with [`Response::Overloaded`] once they speak, or closed cleanly
    /// for peers too old to decode it); 0 removes the cap.
    pub max_connections: usize,
    /// Worker threads running estimate/commit jobs off the event loop; at
    /// least one is always spawned.
    pub workers: usize,
    /// Uncached estimate computations allowed in flight *per location*
    /// before further queries touching that location are shed; 0 removes
    /// the cap. Cache hits are never shed.
    pub max_inflight_estimates: usize,
    /// The `retry_after_ms` hint carried by every shed response.
    pub retry_after_ms: u32,
    /// Consecutive archive-append failures before ingest enters degraded
    /// (read-only) mode. A wedged archive enters it immediately.
    pub degraded_after_failures: u32,
    /// Minimum wait between archive-reopen probes while degraded.
    pub degraded_cooldown: Duration,
    /// Durability level for archive commits.
    pub sync_policy: SyncPolicy,
    /// The active segment rotates (seals + fresh file) once its committed
    /// bytes reach this.
    pub rotate_bytes: u64,
    /// How often the background maintenance thread wakes to compact
    /// small/superseded segments — and, while degraded, to retry the store
    /// reopen under [`ServerConfig::degraded_cooldown`]. Zero disables the
    /// thread entirely.
    pub compact_interval: Duration,
    /// Where the flight recorder dumps its JSONL tail on entry into
    /// degraded mode and on a caught handler panic; `None` disables
    /// automatic dumps (an explicit `Request::Stats` still reads the ring).
    pub recorder_dump: Option<PathBuf>,
    /// Metrics snapshot written on degraded-mode transitions and at
    /// shutdown, so operators get numbers at the moment something went
    /// wrong rather than only on clean exit; `None` disables.
    pub metrics_snapshot: Option<PathBuf>,
    /// Deterministic fault-injection plan threaded into the archive
    /// backend, connection streams, and the ingest/estimate execution
    /// sites; `None` (the default) compiles every hook down to a no-op
    /// check. Test/chaos use only.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            s: 3,
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            cache_capacity: 1024,
            max_connections: 256,
            workers: 4,
            max_inflight_estimates: 8,
            retry_after_ms: 250,
            degraded_after_failures: 3,
            degraded_cooldown: Duration::from_secs(2),
            sync_policy: SyncPolicy::Flush,
            rotate_bytes: 8 * 1024 * 1024,
            compact_interval: Duration::from_secs(30),
            recorder_dump: None,
            metrics_snapshot: None,
            fault_plan: None,
        }
    }
}

/// Errors starting or stopping the daemon.
#[derive(Debug)]
pub enum DaemonError {
    /// Socket-level failure (bind, accept-thread spawn).
    Io(io::Error),
    /// The archive could not be opened, replayed, or flushed.
    Store(StoreError),
    /// The archive replays records the query engine rejects — two archived
    /// records claim the same `(location, period)` with different bits.
    ReplayConflict(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "daemon i/o error: {err}"),
            Self::Store(err) => write!(f, "daemon archive error: {err}"),
            Self::ReplayConflict(detail) => write!(f, "archive replay conflict: {detail}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Store(err) => Some(err),
            Self::ReplayConflict(_) => None,
        }
    }
}

impl From<io::Error> for DaemonError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<StoreError> for DaemonError {
    fn from(err: StoreError) -> Self {
        Self::Store(err)
    }
}

/// What startup recovered from the archive.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Records replayed into the query engine.
    pub records: usize,
    /// Bytes discarded from a torn final frame (0 after a clean shutdown).
    pub torn_bytes: u64,
}

/// Per-location in-flight limiter for uncached estimate computations.
///
/// Estimates are the expensive read path (they walk every queried period's
/// bitmap), so a burst of distinct queries against one location can pile
/// up compute threads. The gate bounds that pile-up: a query is admitted
/// only if *every* location it reads is under the limit, and sheds with
/// [`Response::Overloaded`] otherwise — a bounded, explicit answer instead
/// of unbounded queueing.
struct EstimateGate {
    limit: usize,
    inflight: Mutex<HashMap<LocationId, usize>>,
}

impl EstimateGate {
    fn new(limit: usize) -> Self {
        Self {
            limit,
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Admits the query (reserving a slot on every location it reads) or
    /// returns `None` when any location is at the limit. All-or-nothing,
    /// so a shed query reserves no slots.
    fn try_acquire(&self, locations: &[LocationId]) -> Option<EstimatePermit<'_>> {
        if self.limit == 0 {
            return Some(EstimatePermit {
                gate: self,
                locations: Vec::new(),
            });
        }
        let mut map = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        if locations
            .iter()
            .any(|loc| map.get(loc).copied().unwrap_or(0) >= self.limit)
        {
            return None;
        }
        for loc in locations {
            *map.entry(*loc).or_insert(0) += 1;
        }
        Some(EstimatePermit {
            gate: self,
            locations: locations.to_vec(),
        })
    }
}

/// Slot reservation from [`EstimateGate::try_acquire`]; releases on drop
/// (including on panic, so a crashed estimate cannot leak its slot).
struct EstimatePermit<'a> {
    gate: &'a EstimateGate,
    locations: Vec<LocationId>,
}

impl Drop for EstimatePermit<'_> {
    fn drop(&mut self) {
        if self.locations.is_empty() {
            return;
        }
        let mut map = self
            .gate
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for loc in &self.locations {
            if let Some(n) = map.get_mut(loc) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    map.remove(loc);
                }
            }
        }
    }
}

/// Read-only (degraded) mode bookkeeping: entered when the archive backend
/// keeps failing, left when a cooldown-gated reopen probe succeeds.
#[derive(Default)]
struct DegradedState {
    /// Set while ingest is shedding uploads because the archive is down.
    flag: AtomicBool,
    /// Consecutive archive-append failures; reset by any successful commit.
    failures: AtomicU32,
    /// When the last reopen probe ran (also set on entry, so the first
    /// probe waits a full cooldown).
    last_probe: Mutex<Option<Instant>>,
}

struct Shared {
    /// The sharded query engine. Internally locked per location; hydrated
    /// lazily from the segment store.
    central: CentralServer,
    /// The dedicated writer path: serializes ingest and guards the
    /// segment store. Queries take this lock only to hydrate a location
    /// they are reading for the first time.
    writer: Mutex<SegmentStore>,
    /// Locations whose archived history has been published into `central`.
    /// Grows monotonically; guarded by its own lock so the hydrated-check
    /// fast path never touches the writer lock. Lock order: writer, then
    /// hydrated.
    hydrated: Mutex<HashSet<LocationId>>,
    /// Store-derived record total, kept current by startup/ingest/recovery
    /// so Ping and stats need no writer lock.
    record_total: AtomicUsize,
    /// Store-derived location total (same discipline as `record_total`).
    location_total: AtomicUsize,
    /// Epoch-invalidated query-result cache.
    cache: QueryCache,
    shutdown: AtomicBool,
    config: ServerConfig,
    /// Live connection count, for the accept-side cap.
    conn_count: AtomicUsize,
    estimate_gate: EstimateGate,
    degraded: DegradedState,
    /// Where the store lives, for degraded-mode reopen probes.
    archive_path: PathBuf,
    /// Store options (fault hooks included) shared with the live store so
    /// reopened stores continue the same fault schedules.
    store_opts: StoreOptions,
    /// Connection-stream fault sites (no-ops without a plan).
    read_site: SiteHandle,
    write_site: SiteHandle,
    estimate_site: SiteHandle,
    /// Ingest-execution fault site, checked once per ingest job under the
    /// writer lock (panic/delay injection through the seeded plan).
    ingest_site: SiteHandle,
    /// Graceful-drain flag: set by [`RpcServer::drain`]; the reactor stops
    /// admitting work and answers new requests with
    /// [`Response::GoingAway`].
    draining: AtomicBool,
    /// Set by the reactor once a drain has quiesced: no job in flight, no
    /// pending frames, every reply flushed.
    drained: AtomicBool,
    /// EWMA of worker-queue sojourn in microseconds — the measured queue
    /// delay behind every shed response's `retry_after_ms` hint
    /// (CoDel-style: the hint grows as the queue actually gets slower,
    /// instead of quoting a static number).
    queue_delay_us: AtomicU64,
    /// Per-class worker-queue depths, mirrored from the pool each reactor
    /// sweep so `Stats` can report them without reaching into the pool.
    queue_depths: [AtomicUsize; CLASS_COUNT],
    /// Pool jobs in flight, mirrored like `queue_depths`.
    worker_inflight: AtomicUsize,
}

/// Returns the `retry_after_ms` hint for a shed response: the configured
/// floor raised to the *measured* queue delay, so a genuinely backed-up
/// daemon tells clients to stay away longer — and an idle one never quotes
/// a stale scary number.
fn retry_hint_ms(shared: &Shared) -> u32 {
    let measured_ms = shared.queue_delay_us.load(Ordering::Relaxed) / 1000;
    let measured_ms = u32::try_from(measured_ms.min(60_000)).unwrap_or(60_000);
    shared.config.retry_after_ms.max(measured_ms)
}

/// Folds one measured queue sojourn into the EWMA (α = 1/8) and the
/// `rpc.server.queue_delay_us` histogram.
fn note_queue_delay(shared: &Shared, sojourn: Duration) {
    let us = u64::try_from(sojourn.as_micros()).unwrap_or(u64::MAX);
    if ptm_obs::metrics_enabled() {
        ptm_obs::histogram!("rpc.server.queue_delay_us").record(us);
    }
    let old = shared.queue_delay_us.load(Ordering::Relaxed);
    let new = old - old / 8 + us / 8;
    shared.queue_delay_us.store(new, Ordering::Relaxed);
}

/// Locks the writer path, recovering from poisoning and recording the
/// wait when metrics are enabled.
///
/// Poison recovery is safe here: a panic inside the critical section can
/// only leave buffered-but-unflushed archive bytes (the next flush writes
/// them) — record framing itself is a single buffered `write_all` per
/// record, and the in-memory store is mutated with single inserts.
fn lock_writer(writer: &Mutex<SegmentStore>) -> MutexGuard<'_, SegmentStore> {
    let start = (ptm_obs::metrics_enabled() || ptm_obs::tracing_enabled()).then(Instant::now);
    let guard = writer.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(start) = start {
        if ptm_obs::metrics_enabled() {
            ptm_obs::histogram!("rpc.shard.writer_wait").record(start.elapsed().as_nanos() as u64);
        }
        ptm_obs::tspan!("rpc.server.lock_wait", elapsed = start);
    }
    guard
}

/// A running daemon. Dropping it without calling [`RpcServer::shutdown`]
/// detaches the reactor thread (the process keeps serving); tests and the
/// CLI always shut down explicitly.
pub struct RpcServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    reactor_thread: Option<JoinHandle<()>>,
    maintenance_thread: Option<JoinHandle<()>>,
    replay: ReplayReport,
    archive_path: PathBuf,
}

impl RpcServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), replays the archive at `path`
    /// (creating it if absent), and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Bind failures, archive corruption, or replay conflicts.
    pub fn start(
        addr: impl ToSocketAddrs,
        archive_path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> Result<Self, DaemonError> {
        let archive_path = archive_path.as_ref().to_path_buf();
        let central = CentralServer::new(config.s);
        let (store_hooks, read_site, write_site, estimate_site, ingest_site) =
            match &config.fault_plan {
                Some(plan) => (
                    StoreHooks::from_plan(plan),
                    plan.site(sites::RPC_READ),
                    plan.site(sites::RPC_WRITE),
                    plan.site(sites::RPC_ESTIMATE),
                    plan.site(sites::RPC_INGEST),
                ),
                None => (
                    StoreHooks::disabled(),
                    SiteHandle::disabled(),
                    SiteHandle::disabled(),
                    SiteHandle::disabled(),
                    SiteHandle::disabled(),
                ),
            };
        let store_opts = StoreOptions {
            hooks: store_hooks,
            sync_policy: config.sync_policy,
            rotate_bytes: config.rotate_bytes,
            ..StoreOptions::default()
        };
        // O(index) startup: the store reads its manifest and footer
        // indexes (scanning only the unsealed active segment); records are
        // hydrated into the query engine lazily, per location, on first
        // touch. A v1 single-file archive is migrated into segments here,
        // once.
        let opened = {
            let _replay_span = ptm_obs::tspan!("rpc.server.replay");
            SegmentStore::open_or_migrate(&archive_path, store_opts.clone())?
        };
        let replay = ReplayReport {
            records: opened.store.record_count(),
            torn_bytes: opened.torn_bytes,
        };
        if replay.torn_bytes > 0 {
            ptm_obs::warn!("rpc.server", "archive had a torn tail";
                torn_bytes = replay.torn_bytes, path = archive_path.display().to_string());
        }
        if opened.migrated_records > 0 {
            ptm_obs::info!("rpc.server", "migrated v1 archive into segment store";
                records = opened.migrated_records,
                path = archive_path.display().to_string());
        }
        let location_total = opened.store.location_count();
        ptm_obs::counter!("rpc.server.replay.records").add(replay.records as u64);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let cache = QueryCache::new(config.cache_capacity);
        let estimate_gate = EstimateGate::new(config.max_inflight_estimates);
        let shared = Arc::new(Shared {
            central,
            writer: Mutex::new(opened.store),
            hydrated: Mutex::new(HashSet::new()),
            record_total: AtomicUsize::new(replay.records),
            location_total: AtomicUsize::new(location_total),
            cache,
            shutdown: AtomicBool::new(false),
            config,
            conn_count: AtomicUsize::new(0),
            estimate_gate,
            degraded: DegradedState::default(),
            archive_path: archive_path.clone(),
            store_opts,
            read_site,
            write_site,
            estimate_site,
            ingest_site,
            draining: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            queue_delay_us: AtomicU64::new(0),
            queue_depths: std::array::from_fn(|_| AtomicUsize::new(0)),
            worker_inflight: AtomicUsize::new(0),
        });
        let job_shared = Arc::clone(&shared);
        let pool: WorkerPool<Job, Completion> = WorkerPool::new(
            shared.config.workers,
            "ptm-rpc-worker",
            CLASS_QUEUE_CAPS,
            move |job, sojourn| run_job(&job_shared, job, sojourn),
        )?;
        let reactor_shared = Arc::clone(&shared);
        let reactor_thread = std::thread::Builder::new()
            .name("ptm-rpc-reactor".into())
            .spawn(move || reactor_loop(listener, reactor_shared, pool))?;
        let maintenance_thread = if shared.config.compact_interval.is_zero() {
            None
        } else {
            let maint_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("ptm-rpc-maint".into())
                    .spawn(move || maintenance_loop(maint_shared))?,
            )
        };

        ptm_obs::info!("rpc.server", "daemon listening";
            addr = local_addr.to_string(),
            replayed = replay.records,
            archive = archive_path.display().to_string());
        Ok(Self {
            shared,
            local_addr,
            reactor_thread: Some(reactor_thread),
            maintenance_thread,
            replay,
            archive_path,
        })
    }

    /// The bound socket address (useful after binding port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// What startup recovered from the archive.
    pub fn replay_report(&self) -> ReplayReport {
        self.replay
    }

    /// The archive file backing this daemon.
    pub fn archive_path(&self) -> &Path {
        &self.archive_path
    }

    /// Live records held by the store (lazy hydration means the in-memory
    /// query engine may hold a subset until every location is touched).
    pub fn record_count(&self) -> usize {
        self.shared.record_total.load(Ordering::SeqCst)
    }

    /// Whether ingest is currently degraded (shedding uploads because the
    /// archive backend keeps failing). Queries stay available throughout.
    pub fn degraded(&self) -> bool {
        self.shared.degraded.flag.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: the daemon stops admitting new work and
    /// answers every *new* request with [`Response::GoingAway`] carrying
    /// the measured `retry_after_ms` hint (downgraded to `Overloaded` for
    /// v2 peers; v1 peers get a clean close — never an undecodable frame),
    /// while jobs already dispatched run to completion and their replies
    /// flush. Once [`RpcServer::drain_complete`] reports quiescence, call
    /// [`RpcServer::shutdown`] to checkpoint the store and exit.
    ///
    /// Idempotent; draining is one-way (there is no undrain).
    pub fn drain(&self) {
        if !self.shared.draining.swap(true, Ordering::SeqCst) {
            ptm_obs::gauge!("rpc.server.draining").set(1);
            ptm_obs::info!("rpc.server", "drain started: new work refused with GoingAway";
                inflight = self.shared.worker_inflight.load(Ordering::SeqCst) as u64);
        }
    }

    /// Whether [`RpcServer::drain`] has been called.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Whether a started drain has quiesced: no job in flight, no pending
    /// decoded frames, and every accepted reply flushed to its socket.
    /// Always `false` before [`RpcServer::drain`].
    pub fn drain_complete(&self) -> bool {
        self.shared.drained.load(Ordering::SeqCst)
    }

    /// Live admitted connections (shed connections are not counted). The
    /// reactor retires a closed connection's state on its next sweep, so
    /// teardown is reflected here promptly whether or not anyone is
    /// connecting.
    pub fn connection_count(&self) -> usize {
        self.shared.conn_count.load(Ordering::SeqCst)
    }

    /// Every location with at least one stored record, sorted by id.
    pub fn locations(&self) -> Vec<LocationId> {
        lock_writer(&self.shared.writer).locations()
    }

    /// Graceful shutdown: stop the event loop (in-flight jobs finish and
    /// their replies flush, within a bound), then checkpoint the store —
    /// pending frames committed and fsynced, the active segment sealed,
    /// so the next open is pure O(index).
    ///
    /// # Errors
    ///
    /// Store flush/sync failures (connections are already drained).
    pub fn shutdown(mut self) -> Result<(), DaemonError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.reactor_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.maintenance_thread.take() {
            let _ = handle.join();
        }
        let mut store = lock_writer(&self.shared.writer);
        store.checkpoint()?;
        flush_observability(&self.shared.config, "shutdown");
        ptm_obs::info!("rpc.server", "daemon stopped";
            records = store.record_count());
        Ok(())
    }
}

/// Decoded frames queued on one connection before further reads pause
/// (backpressure: the socket buffer, and eventually the peer, absorb the
/// excess).
const PENDING_CAP: usize = 512;

/// Upload frames coalesced into a single worker job / archive commit.
const MAX_COALESCED_FRAMES: usize = 64;

/// Bounded per-class worker-queue capacities (control, query, upload):
/// admission control's backstop. Control stays tiny because ping/stats are
/// answered inline on the reactor thread and only ever queue as a
/// fallback; queries are latency-sensitive so their queue is kept short;
/// uploads tolerate the deepest backlog because the RSU retry loop
/// absorbs a shed cheaply. A full queue rejects at submit time and the
/// requester is answered `Overloaded` with the measured-delay hint.
const CLASS_QUEUE_CAPS: [usize; CLASS_COUNT] = [64, 128, 512];

/// How long after the last activity the reactor keeps spin-yielding
/// before idle sleeps start escalating. Request/response exchanges with
/// sub-millisecond think time stay inside this window and never eat a
/// sleep-wakeup latency penalty; a truly idle daemon burns at most one
/// window per activity burst before backing off.
const IDLE_SPIN_WINDOW: Duration = Duration::from_millis(2);

/// Output buffers larger than this are released once fully flushed.
const OUT_RECLAIM_ABOVE: usize = 256 * 1024;

/// One decoded request frame, queued per connection until a worker picks
/// it up.
struct DecodedFrame {
    request: Request,
    version: u8,
    trace: Option<WireTrace>,
    /// When the frame left the socket; the gap to dispatch is the
    /// request's queue wait.
    arrived: Instant,
    /// The wire deadline: `arrived` plus the remaining-budget
    /// `deadline_ms` a v3 client stamped behind `FLAG_DEADLINE`. A job
    /// still queued past this instant is *doomed* — its caller has already
    /// given up — and is answered [`Response::DeadlineExceeded`] instead
    /// of executed. `None` (v1/v2 peers, or an unstamped v3 request) never
    /// dooms.
    deadline: Option<Instant>,
}

/// Work handed to the pool: everything needed to compute replies for one
/// connection's next frame (or run of coalesced upload frames).
struct Job {
    conn_id: u64,
    kind: JobKind,
}

enum JobKind {
    /// One non-upload frame (ping, query, stats).
    Single(DecodedFrame),
    /// A run of consecutive upload frames from one connection, committed
    /// together and acked individually.
    Ingest(Vec<DecodedFrame>),
}

/// One reply frame, carried back to the reactor for encoding into the
/// connection's output buffer.
struct Reply {
    response: Response,
    version: u8,
    trace: Option<ptm_obs::TraceContext>,
}

/// What a worker hands back: in-order replies for the job's frames, plus
/// whether the connection must close (handler panic).
struct Completion {
    conn_id: u64,
    replies: Vec<Reply>,
    close: bool,
}

/// Why a connection is being retired, deciding which counter it bumps.
enum CloseKind {
    /// Peer closed, idle cutoff, or server-initiated after a reply.
    Normal,
    /// Peer stopped mid-frame past the stall budget.
    Stalled,
    /// Sat idle past the read timeout with no frame in flight.
    IdleTimeout,
}

/// Per-connection reactor state: the nonblocking socket plus reusable
/// read/write buffers and the pipelining queue.
struct Conn {
    id: u64,
    stream: FaultyStream<TcpStream>,
    peer: SocketAddr,
    decoder: FrameDecoder,
    /// Reusable output buffer; frames append here and flush with one
    /// write, which is what batches acks across pipelined uploads.
    out: Vec<u8>,
    /// Bytes of `out` already written to the socket.
    written: usize,
    /// Decoded frames awaiting dispatch (one job in flight at a time
    /// keeps replies in request order without request ids).
    pending: VecDeque<DecodedFrame>,
    job_inflight: bool,
    /// True for connections admitted over the cap: no worker touches
    /// them, nothing unsolicited is sent, and their first frame is
    /// answered with a version-appropriate shed (or a clean close).
    shed: bool,
    /// When the last complete frame finished (idle cutoff baseline).
    last_frame: Instant,
    /// When the current partial frame started arriving (stall budget).
    frame_start: Option<Instant>,
    /// When the current unflushed output started waiting on the socket.
    write_start: Option<Instant>,
    /// Close once `out` drains and no job is in flight.
    close_after_flush: bool,
    /// Peer hung up; stop reading, finish any in-flight job, then close.
    read_closed: bool,
}

impl Conn {
    fn new(
        id: u64,
        stream: FaultyStream<TcpStream>,
        peer: SocketAddr,
        shed: bool,
        max_frame_len: u32,
    ) -> Self {
        Self {
            id,
            stream,
            peer,
            decoder: FrameDecoder::new(max_frame_len),
            out: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            job_inflight: false,
            shed,
            last_frame: Instant::now(),
            frame_start: None,
            write_start: None,
            close_after_flush: false,
            read_closed: false,
        }
    }

    fn has_unflushed(&self) -> bool {
        self.written < self.out.len()
    }
}

/// Encodes one reply frame into the connection's output buffer (no
/// allocation in steady state — the buffer is reused across frames) and
/// counts it. The actual socket write happens in the flush pass, possibly
/// batched with other replies.
fn queue_reply(conn: &mut Conn, reply: &Reply) {
    let _s = match reply.trace {
        Some(ctx) => ptm_obs::tspan!("rpc.server.encode_reply", child_of = ctx),
        None => ptm_obs::tspan!("rpc.server.encode_reply"),
    };
    let before = conn.out.len();
    append_frame_with(&mut conn.out, |buf| {
        encode_response_into(reply.version, &reply.response, buf);
    });
    ptm_obs::counter!("rpc.server.frames.out").inc();
    ptm_obs::counter!("rpc.server.bytes.out").add((conn.out.len() - before) as u64);
}

/// Queues an untraced reply in the server's own protocol version — the
/// reactor's inline path for decode errors and malformed frames.
fn queue_error_reply(conn: &mut Conn, response: Response) {
    queue_reply(
        conn,
        &Reply {
            response,
            version: PROTOCOL_VERSION,
            trace: None,
        },
    );
}

/// Flushes as much buffered output as the socket accepts right now.
/// Returns `Err(kind)` when the connection must close (write error, no
/// progress, or a peer that stopped draining past the stall budget).
fn flush_conn(conn: &mut Conn, stall_budget: Duration) -> Result<(), CloseKind> {
    while conn.has_unflushed() {
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return Err(CloseKind::Normal),
            Ok(n) => {
                conn.written += n;
                conn.write_start = None;
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                match conn.write_start {
                    Some(start) if start.elapsed() > stall_budget => {
                        ptm_obs::counter!("rpc.server.connections.stalled").inc();
                        ptm_obs::warn!("rpc.server", "peer stopped draining replies";
                            peer = conn.peer.to_string());
                        return Err(CloseKind::Normal);
                    }
                    Some(_) => {}
                    None => conn.write_start = Some(Instant::now()),
                }
                return Ok(());
            }
            Err(err) => {
                ptm_obs::debug!("rpc.server", "response write failed"; error = err.to_string());
                return Err(CloseKind::Normal);
            }
        }
    }
    if !conn.out.is_empty() {
        conn.written = 0;
        conn.out.clear();
        if conn.out.capacity() > OUT_RECLAIM_ABOVE {
            conn.out = Vec::new();
        }
    }
    Ok(())
}

/// A shed connection's first complete frame decides its goodbye: peers on
/// a version that knows the `Overloaded` tag (v2+) get it encoded no
/// newer than they speak — `GoingAway` instead when the daemon is
/// draining (the encoder downgrades it to `Overloaded` for v2) — while v1
/// peers (or garbage) get a clean close — never a frame their decoder
/// cannot read.
fn answer_shed_hello(conn: &mut Conn, shared: &Shared, payload: &[u8]) {
    let retry_after_ms = retry_hint_ms(shared);
    match peek_version(payload) {
        Some(version) if version > MIN_PROTOCOL_VERSION => {
            let floor = version.min(PROTOCOL_VERSION);
            let response = if shared.draining.load(Ordering::SeqCst) {
                ptm_obs::counter!("rpc.server.going_away").inc();
                Response::GoingAway { retry_after_ms }
            } else {
                Response::Overloaded { retry_after_ms }
            };
            queue_reply(
                conn,
                &Reply {
                    response,
                    version: floor,
                    trace: None,
                },
            );
        }
        _ => {}
    }
    conn.close_after_flush = true;
}

/// Reads whatever the socket has, decodes complete frames in place, and
/// queues them for dispatch. Returns `Err` when the connection must
/// close.
fn read_conn(conn: &mut Conn, shared: &Shared, activity: &mut bool) -> Result<(), CloseKind> {
    if conn.read_closed || conn.close_after_flush {
        return Ok(());
    }
    // Backpressure: a peer that pipelines faster than workers drain waits
    // in its socket buffer, not in server memory.
    if conn.pending.len() >= PENDING_CAP {
        return Ok(());
    }
    let now = Instant::now();
    match conn.decoder.read_from(&mut conn.stream) {
        Ok(0) => {
            if conn.decoder.has_partial() {
                // EOF mid-frame: the old blocking reader called this
                // Truncated; same counter, same best-effort close.
                ptm_obs::counter!("rpc.server.frames.bad").inc();
                ptm_obs::warn!("rpc.server", "bad frame";
                    error = FrameError::Truncated.to_string());
                return Err(CloseKind::Normal);
            }
            conn.read_closed = true;
            if conn.job_inflight || conn.has_unflushed() {
                return Ok(());
            }
            Err(CloseKind::Normal)
        }
        Ok(_) => {
            *activity = true;
            loop {
                match conn.decoder.next_frame() {
                    Ok(Some(payload)) => {
                        conn.last_frame = now;
                        conn.frame_start = None;
                        ptm_obs::counter!("rpc.server.frames.in").inc();
                        ptm_obs::counter!("rpc.server.bytes.in").add(payload.len() as u64 + 8);
                        if conn.shed {
                            let payload = payload.to_vec();
                            answer_shed_hello(conn, shared, &payload);
                            return Ok(());
                        }
                        match decode_request(payload) {
                            Ok(decoded) => {
                                if shared.draining.load(Ordering::SeqCst) {
                                    // Draining: hand the peer off. v2+
                                    // gets GoingAway (the encoder
                                    // downgrades v2 to Overloaded); v1
                                    // predates every shed tag and gets a
                                    // clean close instead of an
                                    // undecodable frame.
                                    ptm_obs::counter!("rpc.server.going_away").inc();
                                    if decoded.version > MIN_PROTOCOL_VERSION {
                                        queue_reply(
                                            conn,
                                            &Reply {
                                                response: Response::GoingAway {
                                                    retry_after_ms: retry_hint_ms(shared),
                                                },
                                                version: decoded.version.min(PROTOCOL_VERSION),
                                                trace: None,
                                            },
                                        );
                                    }
                                    conn.close_after_flush = true;
                                    return Ok(());
                                }
                                let deadline = decoded
                                    .deadline_ms
                                    .map(|ms| now + Duration::from_millis(u64::from(ms)));
                                conn.pending.push_back(DecodedFrame {
                                    request: decoded.request,
                                    version: decoded.version,
                                    trace: decoded.trace,
                                    arrived: now,
                                    deadline,
                                });
                                if conn.pending.len() >= PENDING_CAP {
                                    break;
                                }
                            }
                            Err(ProtoError::VersionMismatch { got, want }) => {
                                ptm_obs::counter!("rpc.server.version_mismatch").inc();
                                queue_error_reply(
                                    conn,
                                    Response::Error {
                                        code: ErrorCode::VersionMismatch,
                                        message: format!(
                                            "client speaks version {got}, server speaks {want}"
                                        ),
                                    },
                                );
                                conn.close_after_flush = true;
                                return Ok(());
                            }
                            Err(err) => {
                                ptm_obs::counter!("rpc.server.decode_errors").inc();
                                queue_error_reply(
                                    conn,
                                    Response::Error {
                                        code: ErrorCode::Malformed,
                                        message: err.to_string(),
                                    },
                                );
                                conn.close_after_flush = true;
                                return Ok(());
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(err) => {
                        // Oversized or corrupt frame: best-effort error
                        // reply, then close — the stream cannot be
                        // resynchronized.
                        ptm_obs::counter!("rpc.server.frames.bad").inc();
                        ptm_obs::warn!("rpc.server", "bad frame"; error = err.to_string());
                        queue_error_reply(
                            conn,
                            Response::Error {
                                code: ErrorCode::Malformed,
                                message: err.to_string(),
                            },
                        );
                        conn.close_after_flush = true;
                        return Ok(());
                    }
                }
            }
            if conn.decoder.has_partial() {
                if conn.frame_start.is_none() {
                    conn.frame_start = Some(now);
                }
            } else {
                conn.frame_start = None;
                conn.decoder.reclaim();
            }
            Ok(())
        }
        Err(err)
            if err.kind() == io::ErrorKind::WouldBlock || err.kind() == io::ErrorKind::TimedOut =>
        {
            // Quiet socket: idle and stall cutoffs both key off the read
            // timeout, but mean different things — mid-frame silence is a
            // stall (the peer owes us bytes), between-frame silence is
            // just idleness.
            if conn.decoder.has_partial() {
                let started = conn.frame_start.get_or_insert_with(Instant::now);
                if started.elapsed() > shared.config.read_timeout {
                    ptm_obs::counter!("rpc.server.frames.bad").inc();
                    ptm_obs::warn!("rpc.server", "bad frame";
                        error = FrameError::Stalled.to_string());
                    queue_error_reply(
                        conn,
                        Response::Error {
                            code: ErrorCode::Malformed,
                            message: FrameError::Stalled.to_string(),
                        },
                    );
                    conn.close_after_flush = true;
                    return Err(CloseKind::Stalled);
                }
            } else if conn.last_frame.elapsed() > shared.config.read_timeout
                && !conn.job_inflight
                && conn.pending.is_empty()
            {
                return Err(CloseKind::IdleTimeout);
            }
            Ok(())
        }
        Err(err) if err.kind() == io::ErrorKind::Interrupted => Ok(()),
        Err(err) => {
            ptm_obs::counter!("rpc.server.frames.bad").inc();
            ptm_obs::warn!("rpc.server", "bad frame"; error = err.to_string());
            Err(CloseKind::Normal)
        }
    }
}

/// Admission class of one request: control traffic (ping, stats) beats
/// queries beats uploads — both in worker-queue priority and in shed
/// order under pressure.
fn class_of(request: &Request) -> JobClass {
    match request {
        Request::Ping | Request::Stats => JobClass::Control,
        Request::Upload(_) | Request::UploadBatch(_) => JobClass::Upload,
        Request::QueryVolume { .. } | Request::QueryPoint { .. } | Request::QueryP2p { .. } => {
            JobClass::Query
        }
    }
}

/// Answers every frame of a rejected job with `Overloaded` carrying the
/// measured-delay hint (admission control: the class queue was full), in
/// each requester's own version, and counts the shed per class.
fn shed_rejected_job(conn: &mut Conn, shared: &Shared, job: Job, class: JobClass) {
    let frames = match job.kind {
        JobKind::Single(frame) => vec![frame],
        JobKind::Ingest(frames) => frames,
    };
    let retry_after_ms = retry_hint_ms(shared);
    if ptm_obs::metrics_enabled() {
        ptm_obs::registry()
            .counter(format!("rpc.shed.by_class.{}", class.name()))
            .add(frames.len() as u64);
    }
    for frame in frames {
        queue_reply(
            conn,
            &Reply {
                response: Response::Overloaded { retry_after_ms },
                version: frame.version,
                trace: None,
            },
        );
    }
}

/// Dispatches the connection's pending work. Control frames (ping, stats)
/// are answered **inline on the reactor thread** — the introspection an
/// operator needs most during an incident stays answerable at 100% worker
/// saturation, because it never enters the worker queue at all
/// (`stats_json` only ever try-locks the writer, so this cannot stall the
/// loop). Other work submits to the pool under its class: a run of
/// consecutive upload frames coalesces into one ingest job (single
/// commit, per-frame acks); queries dispatch alone. At most one pool job
/// per connection keeps replies in request order, and a class queue at
/// capacity rejects the job — answered as an `Overloaded` shed with the
/// measured-delay hint.
fn maybe_dispatch(conn: &mut Conn, shared: &Shared, pool: &WorkerPool<Job, Completion>) {
    if conn.job_inflight || conn.close_after_flush || conn.shed {
        return;
    }
    let is_upload =
        |request: &Request| matches!(request, Request::Upload(_) | Request::UploadBatch(_));
    loop {
        let Some(front) = conn.pending.front() else {
            return;
        };
        let class = class_of(&front.request);
        if class == JobClass::Control {
            let Some(frame) = conn.pending.pop_front() else {
                return;
            };
            let reply = run_control(shared, frame);
            queue_reply(conn, &reply);
            // Further pending frames may dispatch now — loop, so a ping
            // queued behind another ping is not stranded until the next
            // sweep.
            continue;
        }
        let kind = if is_upload(&front.request) {
            let mut frames = Vec::new();
            while frames.len() < MAX_COALESCED_FRAMES {
                match conn.pending.front() {
                    Some(f) if is_upload(&f.request) => {
                        if let Some(f) = conn.pending.pop_front() {
                            frames.push(f);
                        }
                    }
                    _ => break,
                }
            }
            JobKind::Ingest(frames)
        } else {
            match conn.pending.pop_front() {
                Some(f) => JobKind::Single(f),
                None => return,
            }
        };
        match pool.submit(
            class,
            Job {
                conn_id: conn.id,
                kind,
            },
        ) {
            Ok(()) => conn.job_inflight = true,
            Err(job) => shed_rejected_job(conn, shared, job, class),
        }
        return;
    }
}

/// Applies a worker's completion: replies are encoded into the output
/// buffer (ack batching happens here — one flush ships them all) and the
/// next pending job dispatches.
fn apply_completion(
    conn: &mut Conn,
    completion: Completion,
    shared: &Shared,
    pool: &WorkerPool<Job, Completion>,
    dispatch_more: bool,
) {
    conn.job_inflight = false;
    for reply in &completion.replies {
        queue_reply(conn, reply);
    }
    if completion.close {
        conn.close_after_flush = true;
    }
    if dispatch_more {
        maybe_dispatch(conn, shared, pool);
    }
}

/// Retires a connection: counters, the admitted-count slot, and the map
/// entry.
fn finish_conn(conns: &mut HashMap<u64, Conn>, shared: &Shared, id: u64, kind: CloseKind) {
    let Some(conn) = conns.remove(&id) else {
        return;
    };
    match kind {
        CloseKind::IdleTimeout => {
            ptm_obs::counter!("rpc.server.connections.idle_timeout").inc();
        }
        CloseKind::Stalled | CloseKind::Normal => {}
    }
    ptm_obs::counter!("rpc.server.connections.closed").inc();
    if !conn.shed {
        shared.conn_count.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The event loop: accepts, sweeps every connection (a nonblocking read
/// is the readiness check), drains worker completions into output
/// buffers, and flushes — all on one thread, so connection state needs no
/// locks. Spins hot while work is in flight and backs off to
/// `poll_interval` sleeps when idle.
// ptm-analyze: reactor-root
fn reactor_loop(listener: TcpListener, shared: Arc<Shared>, pool: WorkerPool<Job, Completion>) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id = 0u64;
    let mut completions: Vec<Completion> = Vec::new();
    let mut closing: Vec<(u64, CloseKind)> = Vec::new();
    let mut last_activity = Instant::now();
    let mut idle_sleeps = 0u32;
    let shed_backlog_cap = shared.config.max_connections.max(64);

    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut activity = false;

        // Accept everything ready. Shedding never writes here — at
        // capacity the socket parks in the shed backlog and is answered
        // (or silently closed) from the sweep once it speaks, so one slow
        // peer cannot stall other accepts.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    activity = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let cap = shared.config.max_connections;
                    let shed = cap != 0 && shared.conn_count.load(Ordering::SeqCst) >= cap;
                    if shed {
                        ptm_obs::counter!("rpc.shed.connections").inc();
                        ptm_obs::warn!("rpc.server", "connection shed at capacity";
                            peer = peer.to_string(), cap = cap);
                        let backlog = conns.values().filter(|c| c.shed).count();
                        if backlog >= shed_backlog_cap {
                            // Beyond the bounded backlog: drop without a
                            // goodbye rather than hold unbounded state.
                            continue;
                        }
                    } else {
                        shared.conn_count.fetch_add(1, Ordering::SeqCst);
                        ptm_obs::counter!("rpc.server.connections.accepted").inc();
                        ptm_obs::debug!("rpc.server", "connection accepted";
                            peer = peer.to_string());
                    }
                    let stream = FaultyStream::new(
                        stream,
                        shared.read_site.clone(),
                        shared.write_site.clone(),
                    );
                    next_id += 1;
                    conns.insert(
                        next_id,
                        Conn::new(next_id, stream, peer, shed, shared.config.max_frame_len),
                    );
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => {
                    ptm_obs::error!("rpc.server", "accept failed"; error = err.to_string());
                    break;
                }
            }
        }

        // Worker completions → reply frames in output buffers.
        pool.drain_completions(&mut completions);
        for completion in completions.drain(..) {
            activity = true;
            // The connection may already be gone (write error while its
            // job ran); the work is durable either way, the reply just
            // has nowhere to go.
            if let Some(conn) = conns.get_mut(&completion.conn_id) {
                apply_completion(conn, completion, &shared, &pool, true);
            }
        }

        // Sweep: read, dispatch, flush, decide closes.
        for conn in conns.values_mut() {
            let result = read_conn(conn, &shared, &mut activity)
                .and_then(|()| {
                    maybe_dispatch(conn, &shared, &pool);
                    flush_conn(conn, shared.config.read_timeout)
                })
                .and_then(|()| {
                    let drained = !conn.has_unflushed();
                    if drained && !conn.job_inflight {
                        if conn.close_after_flush {
                            return Err(CloseKind::Normal);
                        }
                        if conn.read_closed && conn.pending.is_empty() {
                            return Err(CloseKind::Normal);
                        }
                    }
                    Ok(())
                });
            if let Err(kind) = result {
                closing.push((conn.id, kind));
            }
        }
        for (id, kind) in closing.drain(..) {
            activity = true;
            finish_conn(&mut conns, &shared, id, kind);
        }

        // Mirror pool gauges into Shared each sweep: Stats is answered
        // inline on this thread, so the queue depths and in-flight count
        // it reports come from these atomics, never from locking the pool.
        let depths = pool.depths();
        let inflight = pool.inflight();
        for (slot, depth) in shared.queue_depths.iter().zip(depths.iter()) {
            slot.store(*depth, Ordering::Relaxed);
        }
        shared.worker_inflight.store(inflight, Ordering::Relaxed);
        ptm_obs::gauge!("rpc.server.worker_inflight").set(inflight as i64);
        ptm_obs::gauge!("rpc.server.queue_depth.control").set(depths[0] as i64);
        ptm_obs::gauge!("rpc.server.queue_depth.query").set(depths[1] as i64);
        ptm_obs::gauge!("rpc.server.queue_depth.upload").set(depths[2] as i64);

        // Drain quiescence: once draining, the loop keeps running —
        // answering new requests with GoingAway — until every admitted
        // job has finished, every reply has flushed, and nothing is
        // pending. `drain_complete()` observes the flag; the caller then
        // invokes `shutdown()` for the checkpointed exit.
        if shared.draining.load(Ordering::SeqCst)
            && !shared.drained.load(Ordering::SeqCst)
            && inflight == 0
            && depths.iter().all(|&d| d == 0)
            && conns
                .values()
                .all(|c| !c.job_inflight && c.pending.is_empty() && !c.has_unflushed())
        {
            shared.drained.store(true, Ordering::SeqCst);
            ptm_obs::info!(
                "rpc.server",
                "drain complete: in-flight work finished and flushed"
            );
        }

        // Idle policy: spin hot while anything is moving or in flight
        // (yield_now lets workers run on small machines), keep spinning
        // through the short post-activity window so ping-pong workloads
        // never pay a sleep wakeup, then escalate to sleeps capped at the
        // shutdown-poll interval.
        if activity || pool.inflight() > 0 {
            last_activity = Instant::now();
            idle_sleeps = 0;
            std::thread::yield_now();
        } else if last_activity.elapsed() < IDLE_SPIN_WINDOW {
            std::thread::yield_now();
        } else {
            idle_sleeps = idle_sleeps.saturating_add(1);
            let step = Duration::from_micros(50)
                .saturating_mul(idle_sleeps)
                .min(shared.config.poll_interval);
            // ptm-analyze: allow(reactor-blocking): idle-only backoff — sleeps only when no connection has pending work and the pool is empty
            std::thread::sleep(step);
        }
    }

    // Drain: in-flight jobs finish (bounded) and their replies flush, so
    // a request the daemon already accepted is answered before the store
    // checkpoints.
    let deadline = Instant::now() + Duration::from_secs(5);
    while pool.inflight() > 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    pool.drain_completions(&mut completions);
    for completion in completions.drain(..) {
        if let Some(conn) = conns.get_mut(&completion.conn_id) {
            apply_completion(conn, completion, &shared, &pool, false);
        }
    }
    for conn in conns.values_mut() {
        let flush_deadline = Instant::now() + Duration::from_millis(500);
        while conn.has_unflushed() && Instant::now() < flush_deadline {
            if flush_conn(conn, Duration::from_millis(500)).is_err() {
                break;
            }
            if conn.has_unflushed() {
                std::thread::yield_now();
            }
        }
    }
    let ids: Vec<u64> = conns.keys().copied().collect();
    for id in ids {
        finish_conn(&mut conns, &shared, id, CloseKind::Normal);
    }
    pool.shutdown_and_join();
}

/// The background maintenance thread: every `compact_interval` it either
/// retries the degraded-mode store reopen (so recovery does not have to
/// wait for the next upload to probe) or runs a compaction pass merging
/// small/superseded sealed segments. Polls the shutdown flag at
/// `poll_interval` granularity so shutdown never waits a full interval.
fn maintenance_loop(shared: Arc<Shared>) {
    let mut since_tick = Duration::ZERO;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.poll_interval);
        since_tick += shared.config.poll_interval;
        if since_tick < shared.config.compact_interval {
            continue;
        }
        since_tick = Duration::ZERO;
        if shared.degraded.flag.load(Ordering::SeqCst) {
            // Automatic reopen: same probe ingest uses, same cooldown
            // (try_recover enforces it), no upload required to trigger it.
            let mut store = lock_writer(&shared.writer);
            let _ = try_recover(&shared, &mut store);
            continue;
        }
        let mut store = lock_writer(&shared.writer);
        match store.compact() {
            Ok(report) if report.new_segment.is_some() => {
                ptm_obs::debug!("rpc.server", "background compaction ran";
                    merged = report.merged_segments as u64,
                    dropped = report.dropped_frames);
            }
            Ok(_) => {}
            // compact() already counted and logged the failure; the old
            // segment set is intact, so just try again next interval.
            Err(_) => {}
        }
    }
}

/// Runs one job on a pool worker: records the measured queue delay (the
/// sojourn feeds the CoDel-style retry hint), drops doomed work, and
/// executes the rest. A panicking handler is caught and answered, not
/// allowed to unwind: every shared lock recovers from poisoning, so the
/// daemon keeps serving afterwards — only the affected connection closes.
fn run_job(shared: &Shared, job: Job, sojourn: Duration) -> Completion {
    note_queue_delay(shared, sojourn);
    let conn_id = job.conn_id;
    match std::panic::catch_unwind(AssertUnwindSafe(|| execute_job(shared, job.kind))) {
        Ok(replies) => Completion {
            conn_id,
            replies,
            close: false,
        },
        Err(_) => {
            ptm_obs::counter!("rpc.server.panics").inc();
            ptm_obs::error!("rpc.server", "request handler panicked");
            // Preserve the evidence: the recorder tail is the last trace
            // of what the handler was doing.
            dump_recorder(&shared.config, "handler panic");
            Completion {
                conn_id,
                replies: vec![Reply {
                    response: Response::Error {
                        code: ErrorCode::Internal,
                        message: "internal error: request handler panicked".into(),
                    },
                    version: PROTOCOL_VERSION,
                    trace: None,
                }],
                close: true,
            }
        }
    }
}

/// Answers a doomed frame: its wire deadline expired while it waited in
/// the worker queue, so the caller has already given up — executing it
/// would burn a worker on an answer nobody reads.
fn doomed_reply(frame: &DecodedFrame) -> Reply {
    ptm_obs::counter!("rpc.server.deadline_dropped").inc();
    Reply {
        response: Response::DeadlineExceeded,
        version: frame.version,
        trace: None,
    }
}

/// Executes a job's frames, dropping doomed work first (checked once at
/// job start against each frame's wire deadline). For a coalesced ingest
/// job only the live frames commit; reply order still matches request
/// order because live replies are stitched back around the doomed slots.
fn execute_job(shared: &Shared, kind: JobKind) -> Vec<Reply> {
    let now = Instant::now();
    let doomed = |frame: &DecodedFrame| frame.deadline.is_some_and(|d| now > d);
    match kind {
        JobKind::Single(frame) => {
            if doomed(&frame) {
                vec![doomed_reply(&frame)]
            } else {
                vec![run_single(shared, frame)]
            }
        }
        JobKind::Ingest(frames) => {
            if !frames.iter().any(doomed) {
                return ingest_frames(shared, frames);
            }
            let mut slots: Vec<Option<Reply>> = Vec::with_capacity(frames.len());
            let mut live = Vec::new();
            for frame in frames {
                if doomed(&frame) {
                    slots.push(Some(doomed_reply(&frame)));
                } else {
                    slots.push(None);
                    live.push(frame);
                }
            }
            let mut live_replies = if live.is_empty() {
                Vec::new()
            } else {
                ingest_frames(shared, live)
            }
            .into_iter();
            slots
                .into_iter()
                .map(|slot| {
                    slot.or_else(|| live_replies.next()).unwrap_or(Reply {
                        response: Response::Error {
                            code: ErrorCode::Internal,
                            message: "ingest produced no reply".into(),
                        },
                        version: PROTOCOL_VERSION,
                        trace: None,
                    })
                })
                .collect()
        }
    }
}

/// Opens the request's dispatch span — joining the trace context carried
/// in a v3 header, or rooting a locally minted trace for v1/v2 peers — and
/// records the queue wait since the frame left the socket.
fn open_dispatch(trace: Option<WireTrace>, arrived: Instant) -> ptm_obs::trace::SpanGuard {
    let root = match trace {
        Some(wire) => ptm_obs::tspan!(
            "rpc.server.dispatch",
            child_of = ptm_obs::TraceContext {
                trace_id: wire.trace_id,
                span_id: wire.parent_span,
            }
        ),
        None => ptm_obs::tspan!("rpc.server.dispatch"),
    };
    ptm_obs::tspan!("rpc.server.queue_wait", elapsed = arrived);
    root
}

/// Handles one control frame (ping, stats) **inline on the reactor
/// thread**. This is deliberately a separate entry point from
/// [`run_single`]: the control path must stay free of blocking work
/// (query estimation, store commits), and keeping it as its own function
/// lets `ptm-analyze`'s `reactor-blocking` rule check that statically —
/// everything reachable from here runs with every connection stalled
/// behind it.
fn run_control(shared: &Shared, frame: DecodedFrame) -> Reply {
    let root = open_dispatch(frame.trace, frame.arrived);
    let trace = root.context();
    let version = frame.version;
    let response = match frame.request {
        Request::Ping => Response::Pong {
            version: PROTOCOL_VERSION,
            s: shared.config.s,
            records: shared.record_total.load(Ordering::SeqCst) as u64,
            degraded: shared.degraded.flag.load(Ordering::SeqCst),
        },
        Request::Stats => Response::Stats(stats_json(shared)),
        // Unreachable: `maybe_dispatch` routes only `JobClass::Control`
        // frames here. Answering instead of delegating to `run_single`
        // keeps the reactor's static call graph free of the worker-side
        // query/ingest paths.
        _ => Response::Error {
            code: ErrorCode::Internal,
            message: "non-control frame routed to the control path".into(),
        },
    };
    Reply {
        response,
        version,
        trace,
    }
}

/// Handles one non-upload frame (ping, query, stats) on a pool worker.
/// Every downstream stage (lock wait, estimate, encode-reply) parents
/// into the dispatch span, so one round trip is one connected span tree.
fn run_single(shared: &Shared, frame: DecodedFrame) -> Reply {
    let root = open_dispatch(frame.trace, frame.arrived);
    let trace = root.context();
    let version = frame.version;
    let response = match frame.request {
        Request::Ping => Response::Pong {
            version: PROTOCOL_VERSION,
            s: shared.config.s,
            records: shared.record_total.load(Ordering::SeqCst) as u64,
            degraded: shared.degraded.flag.load(Ordering::SeqCst),
        },
        // Uploads route through ingest jobs; this arm only exists so a
        // misrouted frame still gets a correct (if uncoalesced) answer.
        request @ (Request::Upload(_) | Request::UploadBatch(_)) => {
            drop(root);
            let mut replies = ingest_frames(
                shared,
                vec![DecodedFrame {
                    request,
                    version,
                    trace: frame.trace,
                    arrived: frame.arrived,
                    deadline: frame.deadline,
                }],
            );
            return replies.pop().unwrap_or(Reply {
                response: Response::Error {
                    code: ErrorCode::Internal,
                    message: "ingest produced no reply".into(),
                },
                version,
                trace: None,
            });
        }
        Request::QueryVolume { location, period } => {
            ptm_obs::counter!("rpc.server.queries").inc();
            answer_cached(shared, QueryKey::Volume { location, period }, |central| {
                central.estimate_volume(location, period)
            })
        }
        Request::QueryPoint { location, periods } => {
            ptm_obs::counter!("rpc.server.queries").inc();
            let key = QueryKey::Point {
                location,
                periods: periods.clone(),
            };
            answer_cached(shared, key, |central| {
                central.estimate_point_persistent(location, &periods)
            })
        }
        Request::QueryP2p {
            location_a,
            location_b,
            periods,
        } => {
            ptm_obs::counter!("rpc.server.queries").inc();
            let key = QueryKey::P2p {
                location_a,
                location_b,
                periods: periods.clone(),
            };
            answer_cached(shared, key, |central| {
                central.estimate_p2p_persistent(location_a, location_b, &periods)
            })
        }
        Request::Stats => Response::Stats(stats_json(shared)),
    };
    Reply {
        response,
        version,
        trace,
    }
}

/// Renders the live introspection document answered to [`Request::Stats`]
/// (schema documented in `docs/OBSERVABILITY.md` § Live introspection):
/// engine totals, per-shard depths/epochs, histogram percentiles, the full
/// metrics snapshot, and the flight-recorder tail.
fn stats_json(shared: &Shared) -> String {
    let snapshot = ptm_obs::snapshot();
    let mut out = String::with_capacity(2048);
    out.push_str("{\"records\":");
    out.push_str(&shared.record_total.load(Ordering::SeqCst).to_string());
    out.push_str(",\"locations\":");
    out.push_str(&shared.location_total.load(Ordering::SeqCst).to_string());
    out.push_str(",\"connections\":");
    out.push_str(&shared.conn_count.load(Ordering::SeqCst).to_string());
    out.push_str(",\"degraded\":");
    out.push_str(if shared.degraded.flag.load(Ordering::SeqCst) {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"draining\":");
    out.push_str(if shared.draining.load(Ordering::SeqCst) {
        "true"
    } else {
        "false"
    });
    // Overload surface: the reactor mirrors pool state into these atomics
    // every sweep, so Stats — answered inline on the reactor thread —
    // reports live queue pressure even at 100% worker saturation.
    out.push_str(&format!(
        ",\"overload\":{{\"queue_delay_us\":{},\"worker_inflight\":{},\
         \"queue_depth\":{{\"control\":{},\"query\":{},\"upload\":{}}}}}",
        shared.queue_delay_us.load(Ordering::Relaxed),
        shared.worker_inflight.load(Ordering::Relaxed),
        shared.queue_depths[JobClass::Control as usize].load(Ordering::Relaxed),
        shared.queue_depths[JobClass::Query as usize].load(Ordering::Relaxed),
        shared.queue_depths[JobClass::Upload as usize].load(Ordering::Relaxed),
    ));
    // Storage-engine gauges, read under a non-blocking writer probe so an
    // introspection request never queues behind a stalled commit. `null`
    // means "writer busy right now" — ask again.
    out.push_str(",\"store\":");
    let store_guard = match shared.writer.try_lock() {
        Ok(guard) => Some(guard),
        Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
        Err(std::sync::TryLockError::WouldBlock) => None,
    };
    match store_guard {
        Some(store) => out.push_str(&format!(
            "{{\"segments\":{},\"sealed\":{},\"active_bytes\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"compactions\":{},\"wedged\":{}}}",
            store.segment_count(),
            store.sealed_count(),
            store.active_bytes(),
            store.cache_hits(),
            store.cache_misses(),
            store.compaction_count(),
            store.is_wedged(),
        )),
        None => out.push_str("null"),
    }
    out.push_str(",\"shards\":[");
    for (i, (location, records, epoch)) in shared.central.shard_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"location\":{},\"records\":{records},\"epoch\":{epoch}}}",
            location.get()
        ));
    }
    out.push_str("],\"percentiles\":{");
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let q = |q: f64| {
            hist.quantile(q)
                .map_or_else(|| "null".to_string(), |v| v.to_string())
        };
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            hist.count,
            q(0.5),
            q(0.9),
            q(0.99)
        ));
    }
    out.push_str("},\"metrics\":");
    out.push_str(&snapshot.to_json_pretty());
    out.push_str(",\"recorder\":[");
    for (i, entry) in ptm_obs::trace::recorder::entries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&entry.to_json());
    }
    out.push_str("]}");
    out
}

/// The read-only query path: serve from the epoch-validated cache when
/// possible, otherwise compute against the sharded store (shared read
/// locks only — concurrent with uploads to other locations) and cache the
/// answer.
///
/// Epochs are captured *before* computing; see the [`crate::cache`] module
/// docs for why that ordering keeps cached answers bit-for-bit exact.
fn answer_cached(
    shared: &Shared,
    key: QueryKey,
    compute: impl FnOnce(&CentralServer) -> Result<f64, ServerError>,
) -> Response {
    {
        let _s = ptm_obs::tspan!("rpc.server.cache_lookup");
        if let Some(value) = shared.cache.lookup(&key, |loc| shared.central.epoch(loc)) {
            return Response::Estimate(value);
        }
    }
    // Only uncached computations count against the in-flight gate: a
    // cache hit costs nothing, so it is never shed.
    let locations = key.locations();
    // Lazy hydration: a cache miss computes against the query engine, so
    // any location being read for the first time since startup loads its
    // archived history now (a no-op HashSet probe once hydrated).
    if let Err(detail) = ensure_hydrated(shared, &locations) {
        ptm_obs::error!("rpc.server", "hydration before query failed"; detail = detail.clone());
        return Response::Error {
            code: ErrorCode::Internal,
            message: detail,
        };
    }
    let Some(_permit) = shared.estimate_gate.try_acquire(&locations) else {
        ptm_obs::counter!("rpc.shed.estimates").inc();
        return Response::Overloaded {
            retry_after_ms: shared.config.retry_after_ms,
        };
    };
    if let Some(action) = shared.estimate_site.check() {
        match action {
            FaultAction::Delay(pause) => std::thread::sleep(pause),
            _ => {
                return Response::Error {
                    code: ErrorCode::Internal,
                    message: "injected estimate fault".into(),
                }
            }
        }
    }
    let epochs: Vec<(LocationId, u64)> = locations
        .into_iter()
        .map(|loc| (loc, shared.central.epoch(loc)))
        .collect();
    let _s = ptm_obs::tspan!("rpc.server.estimate");
    match compute(&shared.central) {
        Ok(value) => {
            shared.cache.store(key, value, epochs);
            Response::Estimate(value)
        }
        Err(err) => estimate_response(Err(err)),
    }
}

fn estimate_response(result: Result<f64, ServerError>) -> Response {
    match result {
        Ok(value) => Response::Estimate(value),
        Err(err @ ServerError::MissingRecord { .. }) => Response::Error {
            code: ErrorCode::MissingRecord,
            message: err.to_string(),
        },
        Err(err @ ServerError::Estimate(_)) => Response::Error {
            code: ErrorCode::EstimateFailed,
            message: err.to_string(),
        },
        Err(err) => Response::Error {
            code: ErrorCode::Internal,
            message: err.to_string(),
        },
    }
}

/// Publishes the archived history of any not-yet-hydrated `locations`
/// into the query engine, under the already-held writer lock. Idempotent
/// per location (the hydrated set is checked first) and cheap once
/// hydrated: the fast path is a `HashSet` probe.
///
/// Returns an error message when the store contradicts the engine — two
/// different records for the same `(location, period)` — which, given
/// write-ahead ordering, means the store was swapped out from under us.
fn ensure_hydrated_locked(
    shared: &Shared,
    store: &mut SegmentStore,
    locations: &[LocationId],
) -> Result<(), String> {
    let missing: Vec<LocationId> = {
        let hydrated = shared
            .hydrated
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        locations
            .iter()
            .filter(|loc| !hydrated.contains(loc))
            .copied()
            .collect()
    };
    if missing.is_empty() {
        return Ok(());
    }
    for location in missing {
        let records = store
            .records_for_location(location)
            .map_err(|err| format!("hydration read failed: {err}"))?;
        let count = records.len();
        for record in records {
            match shared.central.record(record.location(), record.period()) {
                Some(existing) if existing == *record => {}
                Some(_) => {
                    return Err(format!(
                        "store contradicts query engine at location {} period {}",
                        record.location().get(),
                        record.period().get()
                    ));
                }
                None => {
                    shared
                        .central
                        .submit((*record).clone())
                        .map_err(|err| format!("hydration publish failed: {err}"))?;
                }
            }
        }
        shared
            .hydrated
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(location);
        if count > 0 {
            ptm_obs::counter!("rpc.server.hydrations").inc();
            ptm_obs::debug!("rpc.server", "location hydrated from store";
                location = location.get(), records = count);
        }
    }
    Ok(())
}

/// [`ensure_hydrated_locked`] for callers not holding the writer lock
/// (the query path): probes the hydrated set first so the common case —
/// already hydrated — takes no writer lock at all.
fn ensure_hydrated(shared: &Shared, locations: &[LocationId]) -> Result<(), String> {
    {
        let hydrated = shared
            .hydrated
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if locations.iter().all(|loc| hydrated.contains(loc)) {
            return Ok(());
        }
    }
    let mut store = lock_writer(&shared.writer);
    ensure_hydrated_locked(shared, &mut store, locations)
}

/// How one coalesced upload frame fared through validation.
enum FrameVerdict {
    /// Validated clean: `range` indexes its fresh records in the staged
    /// vector, `duplicates` its idempotent re-sends.
    Staged {
        range: std::ops::Range<usize>,
        duplicates: u32,
    },
    /// Rejected (conflicting duplicate or hydration failure); carries the
    /// error reply. Its records were un-staged — other frames commit.
    Rejected(Response),
}

/// The write-ahead ingest path for a run of coalesced upload frames from
/// one connection, under the exclusive writer lock: validate each frame's
/// batch whole (against the store, against itself, and against the frames
/// staged ahead of it — exactly what committing them one at a time would
/// have seen), persist every fresh record with a **single** append+flush,
/// publish, then ack each frame individually. A conflicting duplicate
/// anywhere in a frame rejects that frame whole and un-stages its records
/// — frames before and after it still commit, matching sequential
/// semantics. Because the archive is appended *before* the records become
/// queryable, a storage failure leaves the engine untouched: every
/// validated frame is answered `Overloaded` (retry genuinely helps once
/// the backend recovers) and nothing is acked.
fn ingest_frames(shared: &Shared, frames: Vec<DecodedFrame>) -> Vec<Reply> {
    let _t = ptm_obs::span!("rpc.server.ingest");
    if frames.len() > 1 {
        ptm_obs::counter!("rpc.server.frames.coalesced").add(frames.len() as u64);
    }
    // Open every frame's dispatch span up front. The first frame's span
    // stays open across the whole commit so lock-wait and commit spans
    // (which parent off the thread-local current span) land inside it;
    // later frames get their queue wait recorded and their trace context
    // captured for the encode-reply stage.
    let mut metas: Vec<(u8, Option<ptm_obs::TraceContext>)> = Vec::with_capacity(frames.len());
    let mut requests: Vec<Request> = Vec::with_capacity(frames.len());
    let mut root0: Option<ptm_obs::trace::SpanGuard> = None;
    for (i, frame) in frames.into_iter().enumerate() {
        let root = open_dispatch(frame.trace, frame.arrived);
        metas.push((frame.version, root.context()));
        requests.push(frame.request);
        if i == 0 {
            root0 = Some(root);
        }
    }
    let _root0 = root0;
    let shed_reply = |(version, trace): &(u8, Option<ptm_obs::TraceContext>)| Reply {
        response: Response::Overloaded {
            retry_after_ms: shared.config.retry_after_ms,
        },
        version: *version,
        trace: *trace,
    };

    let mut store = lock_writer(&shared.writer);
    // Registered execution-site hook: checked once per coalesced ingest
    // job, just after the writer lock is taken. A scheduled `panic`
    // exercises the daemon's catch-unwind and poisoned-lock recovery; a
    // `delay` holds the lock to back the upload queue up; any other
    // action fails the whole job's frames.
    if let Some(action) = shared.ingest_site.check() {
        match action {
            // ptm-analyze: allow(no-unwrap): deliberate fault-injection site; fires only under a scheduled FaultPlan rule
            FaultAction::Panic => panic!("injected ingest fault"),
            FaultAction::Delay(pause) => std::thread::sleep(pause),
            _ => {
                return metas
                    .iter()
                    .map(|(version, trace)| Reply {
                        response: Response::Error {
                            code: ErrorCode::Internal,
                            message: "injected ingest fault".into(),
                        },
                        version: *version,
                        trace: *trace,
                    })
                    .collect();
            }
        }
    }
    // Degraded (read-only) mode: the archive backend kept failing. Shed
    // uploads fast — or, if the cooldown has passed, probe a reopen and
    // resume ingest on success. Queries never reach this path.
    if shared.degraded.flag.load(Ordering::SeqCst) && !try_recover(shared, &mut store) {
        return metas
            .iter()
            .map(|meta| {
                ptm_obs::counter!("rpc.shed.uploads").inc();
                shed_reply(meta)
            })
            .collect();
    }

    // Validate frame by frame, staging fresh records into one commit.
    // `batch_index` spans the whole staged set so cross-frame duplicates
    // resolve exactly as sequential commits would: identical re-send →
    // idempotent duplicate, different contents → that frame rejected.
    let mut staged: Vec<TrafficRecord> = Vec::new();
    let mut batch_index: HashMap<(LocationId, PeriodId), usize> = HashMap::new();
    let mut verdicts: Vec<FrameVerdict> = Vec::with_capacity(requests.len());
    for request in requests {
        let records = match request {
            Request::Upload(record) => vec![record],
            Request::UploadBatch(records) => records,
            // maybe_dispatch only coalesces upload frames.
            _ => Vec::new(),
        };
        let staged_start = staged.len();
        let mut added_keys: Vec<(LocationId, PeriodId)> = Vec::new();
        let mut duplicates = 0u32;
        let mut rejection: Option<Response> = None;
        // Duplicate validation consults the query engine, so every
        // location this frame touches must be hydrated first.
        let touched: Vec<LocationId> = {
            let mut seen: Vec<LocationId> = Vec::new();
            for record in &records {
                if !seen.contains(&record.location()) {
                    seen.push(record.location());
                }
            }
            seen
        };
        if let Err(detail) = ensure_hydrated_locked(shared, &mut store, &touched) {
            ptm_obs::error!("rpc.server", "hydration before ingest failed";
                detail = detail.clone());
            verdicts.push(FrameVerdict::Rejected(Response::Error {
                code: ErrorCode::Internal,
                message: detail,
            }));
            continue;
        }
        for record in records {
            let key = (record.location(), record.period());
            match shared.central.record(key.0, key.1) {
                Some(existing) if existing == record => {
                    duplicates += 1;
                    continue;
                }
                Some(_) => {
                    ptm_obs::counter!("rpc.server.ingest.conflicts").inc();
                    rejection = Some(Response::Error {
                        code: ErrorCode::DuplicateConflict,
                        message: format!(
                            "location {} period {} already holds different contents",
                            key.0.get(),
                            key.1.get()
                        ),
                    });
                    break;
                }
                None => {}
            }
            match batch_index.get(&key) {
                Some(&index) if staged[index] == record => duplicates += 1,
                Some(&index) => {
                    ptm_obs::counter!("rpc.server.ingest.conflicts").inc();
                    let message = if index >= staged_start {
                        format!(
                            "location {} period {} repeated within one batch with different \
                             contents",
                            key.0.get(),
                            key.1.get()
                        )
                    } else {
                        // Staged by an earlier pipelined frame: to this
                        // frame it is indistinguishable from an already
                        // committed record.
                        format!(
                            "location {} period {} already holds different contents",
                            key.0.get(),
                            key.1.get()
                        )
                    };
                    rejection = Some(Response::Error {
                        code: ErrorCode::DuplicateConflict,
                        message,
                    });
                    break;
                }
                None => {
                    batch_index.insert(key, staged.len());
                    added_keys.push(key);
                    staged.push(record);
                }
            }
        }
        match rejection {
            Some(response) => {
                // Un-stage only this frame's records; earlier frames'
                // staging is untouched.
                staged.truncate(staged_start);
                for key in added_keys {
                    batch_index.remove(&key);
                }
                verdicts.push(FrameVerdict::Rejected(response));
            }
            None => verdicts.push(FrameVerdict::Staged {
                range: staged_start..staged.len(),
                duplicates,
            }),
        }
    }

    // Write-ahead: disk first, then the query engine, then the acks. One
    // append+flush covers every staged frame — the batching win of the
    // pipelined path. A failed append rolled the archive back to its last
    // committed frame (ptm-store's transactional commit), so nothing from
    // any frame is durable and no validated frame is acked.
    let commit_span = ptm_obs::tspan!("rpc.server.commit");
    let commit_result = store.append_all(staged.iter());
    drop(commit_span);
    if let Err(err) = commit_result {
        let failures = shared.degraded.failures.fetch_add(1, Ordering::SeqCst) + 1;
        ptm_obs::counter!("store.fault.append_errors").inc();
        ptm_obs::error!("rpc.server", "archive append failed; batch rolled back";
            error = err.to_string(), consecutive = failures);
        if store.is_wedged() || failures >= shared.config.degraded_after_failures {
            enter_degraded(shared);
        }
        return verdicts
            .iter()
            .zip(&metas)
            .map(|(verdict, meta)| match verdict {
                FrameVerdict::Staged { .. } => {
                    ptm_obs::counter!("rpc.shed.uploads").inc();
                    shed_reply(meta)
                }
                FrameVerdict::Rejected(response) => Reply {
                    response: response.clone(),
                    version: meta.0,
                    trace: meta.1,
                },
            })
            .collect();
    }
    shared.degraded.failures.store(0, Ordering::SeqCst);

    // Publish and ack per frame. Validation plus the exclusive writer
    // lock make publish conflicts impossible; answer that frame
    // defensively rather than panic if the invariant is ever broken (its
    // records are already durable, so the remaining frames still
    // publish).
    let mut accepted_total = 0u64;
    let mut duplicates_total = 0u64;
    let replies: Vec<Reply> = verdicts
        .into_iter()
        .zip(&metas)
        .map(|(verdict, meta)| {
            let response = match verdict {
                FrameVerdict::Rejected(response) => response,
                FrameVerdict::Staged { range, duplicates } => {
                    let accepted = range.len() as u32;
                    let mut failed = None;
                    for record in &staged[range] {
                        if let Err(err) = shared.central.submit(record.clone()) {
                            ptm_obs::error!("rpc.server", "publish after archive failed";
                                error = err.to_string());
                            failed = Some(Response::Error {
                                code: ErrorCode::Internal,
                                message: err.to_string(),
                            });
                            break;
                        }
                    }
                    match failed {
                        Some(response) => response,
                        None => {
                            accepted_total += u64::from(accepted);
                            duplicates_total += u64::from(duplicates);
                            Response::UploadOk {
                                accepted,
                                duplicates,
                            }
                        }
                    }
                }
            };
            Reply {
                response,
                version: meta.0,
                trace: meta.1,
            }
        })
        .collect();

    shared
        .record_total
        .store(store.record_count(), Ordering::SeqCst);
    shared
        .location_total
        .store(store.location_count(), Ordering::SeqCst);
    if ptm_obs::metrics_enabled() {
        ptm_obs::gauge!("rpc.shard.records").set(store.record_count() as i64);
        ptm_obs::gauge!("rpc.shard.locations").set(store.location_count() as i64);
    }
    ptm_obs::counter!("rpc.server.ingest.accepted").add(accepted_total);
    ptm_obs::counter!("rpc.server.ingest.duplicates").add(duplicates_total);
    replies
}

/// Flips ingest into degraded (read-only) mode. Idempotent.
fn enter_degraded(shared: &Shared) {
    if !shared.degraded.flag.swap(true, Ordering::SeqCst) {
        // Stamp the probe clock on entry so the first reopen attempt
        // waits out a full cooldown instead of firing immediately into
        // the same failing backend.
        *shared
            .degraded
            .last_probe
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
        ptm_obs::counter!("store.recovery.degraded_entries").inc();
        ptm_obs::gauge!("rpc.server.degraded").set(1);
        ptm_obs::error!("rpc.server", "entering degraded mode: uploads shed, queries served";
            cooldown_ms = shared.config.degraded_cooldown.as_millis() as u64);
        // Capture the evidence at the moment of failure, not at exit.
        flush_observability(&shared.config, "degraded entry");
    }
}

/// Best-effort flight-recorder dump to the configured path; failures are
/// logged and swallowed (a broken dump path must not worsen the incident).
fn dump_recorder(config: &ServerConfig, why: &str) {
    let Some(path) = &config.recorder_dump else {
        return;
    };
    match ptm_obs::trace::recorder::dump_to(path) {
        Ok(entries) => {
            ptm_obs::info!("rpc.server", "flight recorder dumped";
                why = why, entries = entries, path = path.display().to_string());
        }
        Err(err) => {
            ptm_obs::warn!("rpc.server", "flight recorder dump failed";
                why = why, error = err.to_string());
        }
    }
}

/// Flushes the metrics snapshot and flight recorder to their configured
/// paths on a lifecycle transition (degraded entry/exit, shutdown), so the
/// on-disk picture is current when something goes wrong — not only after a
/// clean exit.
fn flush_observability(config: &ServerConfig, why: &str) {
    if let Some(path) = &config.metrics_snapshot {
        if ptm_obs::metrics_enabled() {
            if let Err(err) = std::fs::write(path, ptm_obs::snapshot().to_json_pretty()) {
                ptm_obs::warn!("rpc.server", "metrics snapshot flush failed";
                    why = why, error = err.to_string());
            }
        }
    }
    dump_recorder(config, why);
}

/// Degraded-mode reopen probe, called under the writer lock. At most one
/// probe per cooldown: reopen the segment store from disk, reconcile the
/// hydrated working set against the query engine, and swap it in. Returns
/// whether ingest may resume.
fn try_recover(shared: &Shared, store: &mut MutexGuard<'_, SegmentStore>) -> bool {
    {
        let mut last = shared
            .degraded
            .last_probe
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match *last {
            Some(at) if at.elapsed() < shared.config.degraded_cooldown => return false,
            _ => *last = Some(Instant::now()),
        }
    }
    // Reopen from disk through the same hooks, so chaos schedules carry
    // across the swap. Open re-runs torn-tail recovery, which is what
    // heals a wedged store whose rollback truncate failed.
    let mut recovered =
        match SegmentStore::open_or_migrate(&shared.archive_path, shared.store_opts.clone()) {
            Ok(opened) => opened,
            Err(err) => {
                ptm_obs::warn!("rpc.server", "degraded-mode reopen probe failed";
                    error = err.to_string());
                return false;
            }
        };
    // The store is written ahead of the query engine, so durable state can
    // only ever trail what is in memory — never contradict it. Only the
    // hydrated working set needs checking: locations the query engine has
    // never loaded re-hydrate lazily from the fresh store on next touch. A
    // record on disk but not in memory (a crash squeezed between commit
    // and publish) is re-published idempotently; a contradiction means the
    // directory was swapped out from under us, and ingest stays down.
    let hydrated: Vec<LocationId> = {
        let set = shared
            .hydrated
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        set.iter().copied().collect()
    };
    for location in hydrated {
        let records = match recovered.store.records_for_location(location) {
            Ok(records) => records,
            Err(err) => {
                ptm_obs::error!("rpc.server", "reading reopened store during recovery failed";
                    location = location.get(), error = err.to_string());
                return false;
            }
        };
        for record in records {
            match shared.central.record(record.location(), record.period()) {
                Some(existing) if existing == *record => {}
                Some(_) => {
                    ptm_obs::error!("rpc.server", "reopened store contradicts the query engine";
                        location = record.location().get(), period = record.period().get());
                    return false;
                }
                None => {
                    if let Err(err) = shared.central.submit((*record).clone()) {
                        ptm_obs::error!("rpc.server", "republish during recovery failed";
                            error = err.to_string());
                        return false;
                    }
                }
            }
        }
    }
    let (records, locations, torn_bytes) = (
        recovered.store.record_count(),
        recovered.store.location_count(),
        recovered.torn_bytes,
    );
    **store = recovered.store;
    shared.record_total.store(records, Ordering::SeqCst);
    shared.location_total.store(locations, Ordering::SeqCst);
    shared.degraded.failures.store(0, Ordering::SeqCst);
    shared.degraded.flag.store(false, Ordering::SeqCst);
    ptm_obs::counter!("store.recovery.reopens").inc();
    ptm_obs::gauge!("rpc.server.degraded").set(0);
    ptm_obs::info!("rpc.server", "left degraded mode; store reopened";
        records = records, torn_bytes = torn_bytes);
    flush_observability(&shared.config, "degraded exit");
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame, ReadOutcome};
    use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use ptm_core::record::PeriodId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::io::Write;

    fn temp_archive(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ptm-rpc-server-{}-{name}.ptma", std::process::id()));
        // The path may hold a leftover v1 file or a v2 segment directory.
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn cleanup_archive(path: &PathBuf) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir_all(path);
    }

    /// Post-shutdown durable record count, read straight off the disk.
    fn archived_records(path: &PathBuf) -> usize {
        let opened = SegmentStore::open_or_migrate(path, StoreOptions::default()).expect("open");
        opened.store.record_count()
    }

    fn sample_record(location: u64, period: u32) -> TrafficRecord {
        let scheme = EncodingScheme::new(7, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(u64::from(period) + location * 31);
        let mut record = TrafficRecord::new(
            LocationId::new(location),
            PeriodId::new(period),
            BitmapSize::new(512).expect("pow2"),
        );
        for _ in 0..40 {
            let v = VehicleSecrets::generate(&mut rng, 3);
            record.encode(&scheme, &v);
        }
        record
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        }
    }

    fn exchange(stream: &mut TcpStream, request: &Request) -> Response {
        let payload = crate::proto::encode_request(request);
        write_frame(stream, &payload).expect("write");
        match read_frame(stream, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(bytes) => crate::proto::decode_response(&bytes).expect("decode"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    fn connect(addr: std::net::SocketAddr) -> TcpStream {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
    }

    #[test]
    fn start_serve_shutdown_and_replay() {
        let path = temp_archive("lifecycle");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();

        // Drive the daemon with raw frames (the client crate is tested
        // separately): upload two records, then re-send one identically.
        let mut stream = connect(addr);
        for (record, want_accepted, want_dup) in [
            (sample_record(1, 0), 1u32, 0u32),
            (sample_record(1, 1), 1, 0),
            (sample_record(1, 0), 0, 1),
        ] {
            let response = exchange(&mut stream, &Request::Upload(record));
            assert_eq!(
                response,
                Response::UploadOk {
                    accepted: want_accepted,
                    duplicates: want_dup
                }
            );
        }
        drop(stream);
        assert_eq!(server.record_count(), 2);
        server.shutdown().expect("shutdown");

        // Restart on the same archive: records replay from disk.
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("restart");
        assert_eq!(server.replay_report().records, 2);
        assert_eq!(server.record_count(), 2);
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn conflicting_duplicate_rejected_and_not_archived() {
        let path = temp_archive("conflict");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();
        let mut stream = connect(addr);

        let original = sample_record(4, 0);
        let mut conflicting = sample_record(4, 0);
        conflicting.set_reported_index(0);
        conflicting.set_reported_index(1);
        assert_ne!(original, conflicting);

        for (record, want_err) in [(original, false), (conflicting, true)] {
            let response = exchange(&mut stream, &Request::Upload(record));
            if want_err {
                assert!(
                    matches!(
                        response,
                        Response::Error {
                            code: ErrorCode::DuplicateConflict,
                            ..
                        }
                    ),
                    "{response:?}"
                );
            } else {
                assert_eq!(
                    response,
                    Response::UploadOk {
                        accepted: 1,
                        duplicates: 0
                    }
                );
            }
        }
        server.shutdown().expect("shutdown");
        // Only the first record reached the archive.
        assert_eq!(archived_records(&path), 1);
        cleanup_archive(&path);
    }

    #[test]
    fn garbage_frame_closes_connection_but_not_daemon() {
        let path = temp_archive("garbage");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();

        // A frame whose checksum cannot match.
        let mut stream = connect(addr);
        let mut junk = Vec::new();
        junk.extend_from_slice(&4u32.to_le_bytes());
        junk.extend_from_slice(&0u32.to_le_bytes());
        junk.extend_from_slice(&[1, 2, 3, 4]);
        stream.write_all(&junk).expect("write junk");
        // The server answers with a malformed-error frame and closes.
        match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
            Ok(ReadOutcome::Frame(bytes)) => {
                let response = crate::proto::decode_response(&bytes).expect("decode");
                assert!(
                    matches!(
                        response,
                        Response::Error {
                            code: ErrorCode::Malformed,
                            ..
                        }
                    ),
                    "{response:?}"
                );
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        drop(stream);

        // The daemon still serves a healthy client afterwards.
        let mut stream = connect(addr);
        let response = exchange(&mut stream, &Request::Ping);
        assert_eq!(
            response,
            Response::Pong {
                version: PROTOCOL_VERSION,
                s: 3,
                records: 0,
                degraded: false
            }
        );
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn panicked_handler_does_not_poison_the_daemon() {
        let path = temp_archive("panic");
        let mut config = test_config();
        // Registered chaos site, not a bespoke backdoor: the first ingest
        // job panics inside the writer lock.
        config.fault_plan = Some(FaultPlan::parse("rpc.ingest@1=panic", 7).expect("plan"));
        let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
        let addr = server.local_addr();

        // First request panics inside ingest while holding the writer
        // lock, poisoning it. The daemon must answer with an Internal
        // error frame instead of unwinding the connection thread.
        let mut stream = connect(addr);
        let response = exchange(&mut stream, &Request::Upload(sample_record(1, 0)));
        assert!(
            matches!(
                response,
                Response::Error {
                    code: ErrorCode::Internal,
                    ..
                }
            ),
            "{response:?}"
        );
        drop(stream);

        // Regression: before poison recovery, every later request died on
        // `lock().expect("state lock")` — one bad request was a
        // whole-daemon outage. The next connection must be served fully.
        let mut stream = connect(addr);
        assert_eq!(
            exchange(&mut stream, &Request::Ping),
            Response::Pong {
                version: PROTOCOL_VERSION,
                s: 3,
                records: 0,
                degraded: false
            }
        );
        let record = sample_record(1, 0);
        assert_eq!(
            exchange(&mut stream, &Request::Upload(record.clone())),
            Response::UploadOk {
                accepted: 1,
                duplicates: 0
            }
        );
        match exchange(
            &mut stream,
            &Request::QueryVolume {
                location: record.location(),
                period: record.period(),
            },
        ) {
            Response::Estimate(value) => assert!(value.is_finite() && value > 0.0),
            other => panic!("expected estimate, got {other:?}"),
        }
        assert_eq!(server.record_count(), 1);
        server.shutdown().expect("shutdown");

        // The poisoned-then-recovered writer still archived correctly.
        assert_eq!(archived_records(&path), 1);
        cleanup_archive(&path);
    }

    #[test]
    fn slow_writer_is_served_not_disconnected() {
        let path = temp_archive("slow-writer");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();

        // Dribble one upload frame a few bytes at a time, pausing well
        // past the server's poll interval (5 ms) between writes. The old
        // reader declared the connection stalled at the first mid-frame
        // timeout; the stall budget (read_timeout = 2 s) must keep it
        // alive to the end of the frame.
        let payload = crate::proto::encode_request(&Request::Upload(sample_record(8, 0)));
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("vec write");

        let mut stream = connect(addr);
        for chunk in framed.chunks(3).take(8) {
            stream.write_all(chunk).expect("dribble");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(25));
        }
        stream.write_all(&framed[3 * 8..]).expect("tail");
        match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(bytes) => {
                let response = crate::proto::decode_response(&bytes).expect("decode");
                assert_eq!(
                    response,
                    Response::UploadOk {
                        accepted: 1,
                        duplicates: 0
                    }
                );
            }
            other => panic!("expected upload ack, got {other:?}"),
        }
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn estimate_gate_is_per_location_and_all_or_nothing() {
        let gate = EstimateGate::new(2);
        let a = LocationId::new(1);
        let b = LocationId::new(2);
        let first = gate.try_acquire(&[a]).expect("slot 1 of 2");
        let _second = gate.try_acquire(&[a, b]).expect("slot 2 of 2 on a, 1 on b");
        assert!(gate.try_acquire(&[a]).is_none(), "a is at the limit");
        // A shed multi-location query must not leak a slot on b.
        assert!(gate.try_acquire(&[a, b]).is_none());
        let third = gate.try_acquire(&[b]).expect("b still has room");
        drop(third);
        drop(first);
        assert!(
            gate.try_acquire(&[a]).is_some(),
            "released slot is reusable"
        );
    }

    #[test]
    fn estimate_gate_limit_zero_is_unlimited() {
        let gate = EstimateGate::new(0);
        let a = LocationId::new(9);
        let permits: Vec<_> = (0..64).map(|_| gate.try_acquire(&[a])).collect();
        assert!(permits.iter().all(Option::is_some));
    }

    #[test]
    fn connection_cap_sheds_with_an_overloaded_frame() {
        let path = temp_archive("conn-cap");
        let config = ServerConfig {
            max_connections: 2,
            retry_after_ms: 33,
            ..test_config()
        };
        let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
        let addr = server.local_addr();

        // Two pinged (so definitely registered) connections fill the cap.
        let mut held_a = connect(addr);
        let mut held_b = connect(addr);
        assert!(matches!(
            exchange(&mut held_a, &Request::Ping),
            Response::Pong { .. }
        ));
        assert!(matches!(
            exchange(&mut held_b, &Request::Ping),
            Response::Pong { .. }
        ));

        // The third connection receives nothing unsolicited; its first
        // request is answered with Overloaded and the connection closes.
        let mut shed = connect(addr);
        assert_eq!(
            exchange(&mut shed, &Request::Ping),
            Response::Overloaded { retry_after_ms: 33 }
        );
        assert!(matches!(
            read_frame(&mut shed, DEFAULT_MAX_FRAME_LEN),
            Ok(ReadOutcome::Closed)
        ));
        drop(shed);

        // Releasing one slot lets a new connection in (the reactor
        // retires the closed connection on its next sweep, so poll
        // briefly): a Pong instead of Overloaded means admitted.
        drop(held_a);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut retry = connect(addr);
            match exchange(&mut retry, &Request::Ping) {
                Response::Overloaded { .. } => {
                    assert!(Instant::now() < deadline, "slot never released");
                    std::thread::sleep(Duration::from_millis(10));
                }
                Response::Pong { .. } => break,
                other => panic!("unexpected response {other:?}"),
            }
        }
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn shed_path_never_writes_unsolicited_or_blocks_other_accepts() {
        // Regression for the accept-loop head-of-line blocking bug: the
        // old accept thread wrote the Overloaded frame inline with a 1 s
        // write timeout, so one slow shed peer could stall every other
        // accept — and the unsolicited frame raced the client's first
        // request. Now shed connections park silently until they speak.
        let path = temp_archive("shed-hol");
        let config = ServerConfig {
            max_connections: 1,
            retry_after_ms: 21,
            // Long idle cutoff: the sequential no-bytes check below takes
            // ~2 s across 20 lingerers, and none may be idle-closed before
            // its turn.
            read_timeout: Duration::from_secs(10),
            ..test_config()
        };
        let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
        let addr = server.local_addr();

        let mut held = connect(addr);
        assert!(matches!(
            exchange(&mut held, &Request::Ping),
            Response::Pong { .. }
        ));

        // A pile of shed connections that never read and never speak.
        // Under the old inline write they would each have received an
        // unsolicited frame (and, unread, could stall the accept thread).
        let lingerers: Vec<TcpStream> = (0..20).map(|_| connect(addr)).collect();
        std::thread::sleep(Duration::from_millis(100));

        // While they linger, the admitted connection is served promptly.
        let start = Instant::now();
        assert!(matches!(
            exchange(&mut held, &Request::Ping),
            Response::Pong { .. }
        ));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "admitted connection stalled behind shed peers: {:?}",
            start.elapsed()
        );

        // No shed connection received a single unsolicited byte.
        for mut lingerer in lingerers {
            lingerer
                .set_read_timeout(Some(Duration::from_millis(100)))
                .expect("timeout");
            assert!(
                matches!(
                    read_frame(&mut lingerer, DEFAULT_MAX_FRAME_LEN),
                    Ok(ReadOutcome::Idle)
                ),
                "shed connection received unsolicited bytes"
            );
        }

        // A shed connection that does speak gets its Overloaded answer.
        let mut polite = connect(addr);
        assert_eq!(
            exchange(&mut polite, &Request::Ping),
            Response::Overloaded { retry_after_ms: 21 }
        );
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn v1_client_at_capacity_gets_clean_close_not_undecodable_frame() {
        // Regression for the shed-path versioning bug: the Overloaded
        // response used to be encoded in the server's own protocol
        // version before any peer bytes were read, so a v1 client at
        // capacity received a frame its decoder rejects (v1 predates the
        // Overloaded tag). Now the reactor peeks the hello's version
        // byte: v2+ gets Overloaded encoded no newer than it speaks, v1
        // gets a clean close with zero bytes.
        let path = temp_archive("shed-v1");
        let config = ServerConfig {
            max_connections: 1,
            retry_after_ms: 44,
            ..test_config()
        };
        let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
        let addr = server.local_addr();

        let mut held = connect(addr);
        assert!(matches!(
            exchange(&mut held, &Request::Ping),
            Response::Pong { .. }
        ));

        // Hand-crafted v1 ping: `version | tag` (tag 1 = Ping), no flags
        // byte.
        let mut v1 = connect(addr);
        write_frame(&mut v1, &[1, 1]).expect("write v1 ping");
        match read_frame(&mut v1, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Closed => {}
            other => panic!("v1 shed must close cleanly with zero bytes, got {other:?}"),
        }

        // A v2 peer gets Overloaded carried in a v2 header, never v3.
        let mut v2 = connect(addr);
        write_frame(&mut v2, &[2, 1]).expect("write v2 ping");
        match read_frame(&mut v2, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(bytes) => {
                assert_eq!(bytes[0], 2, "reply header newer than the peer speaks");
                assert_eq!(
                    crate::proto::decode_response(&bytes).expect("decode"),
                    Response::Overloaded { retry_after_ms: 44 }
                );
            }
            other => panic!("expected a v2 Overloaded frame, got {other:?}"),
        }
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn drain_answers_going_away_then_reports_complete() {
        let path = temp_archive("drain");
        let config = ServerConfig {
            retry_after_ms: 37,
            ..test_config()
        };
        let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
        let addr = server.local_addr();

        // Work accepted before the drain is still answered.
        let mut stream = connect(addr);
        assert_eq!(
            exchange(&mut stream, &Request::Upload(sample_record(1, 0))),
            Response::UploadOk {
                accepted: 1,
                duplicates: 0
            }
        );
        assert!(!server.draining());
        server.drain();
        assert!(server.draining());

        // A v3 request after the drain gets the explicit hand-off: the
        // reactor is still running, it just takes nothing new.
        let mut late = connect(addr);
        assert_eq!(
            exchange(&mut late, &Request::Ping),
            Response::GoingAway { retry_after_ms: 37 }
        );

        // With nothing in flight and every reply flushed, quiescence is
        // published for the caller to observe before shutting down.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !server.drain_complete() {
            assert!(Instant::now() < deadline, "drain never completed");
            std::thread::yield_now();
        }
        server.shutdown().expect("shutdown");

        // The checkpointed store reopens with the pre-drain upload intact.
        let reopened = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("restart");
        let mut stream = connect(reopened.local_addr());
        match exchange(&mut stream, &Request::Ping) {
            Response::Pong { records, .. } => assert_eq!(records, 1, "acked record lost"),
            other => panic!("expected Pong, got {other:?}"),
        }
        reopened.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn draining_server_version_matrix_stays_protocol_clean() {
        // Same discipline as the shed-path versioning fix: a draining
        // server must never send a peer a frame its decoder predates. v1
        // (no GoingAway, no Overloaded) gets a clean close; v2 gets the
        // hand-off downgraded to the Overloaded tag it understands, in a
        // v2 header; v3 gets GoingAway itself.
        let path = temp_archive("drain-matrix");
        let config = ServerConfig {
            retry_after_ms: 58,
            ..test_config()
        };
        let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
        let addr = server.local_addr();
        server.drain();

        let mut v1 = connect(addr);
        write_frame(&mut v1, &[1, 1]).expect("write v1 ping");
        match read_frame(&mut v1, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Closed => {}
            other => panic!("v1 at a draining server must close cleanly, got {other:?}"),
        }

        let mut v2 = connect(addr);
        write_frame(&mut v2, &[2, 1]).expect("write v2 ping");
        match read_frame(&mut v2, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(bytes) => {
                assert_eq!(bytes[0], 2, "reply header newer than the peer speaks");
                assert_eq!(
                    crate::proto::decode_response(&bytes).expect("decode"),
                    Response::Overloaded { retry_after_ms: 58 }
                );
            }
            other => panic!("expected a v2 Overloaded frame, got {other:?}"),
        }

        let mut v3 = connect(addr);
        assert_eq!(
            exchange(&mut v3, &Request::Ping),
            Response::GoingAway { retry_after_ms: 58 }
        );
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn doomed_queued_work_is_dropped_not_executed() {
        // A frame whose wire deadline passed while it waited in the
        // worker queue is answered DeadlineExceeded, not executed. One
        // worker is parked on an injected ingest delay; a query stamped
        // with a 1 ms budget queues behind it and dooms.
        let path = temp_archive("doomed");
        let config = ServerConfig {
            workers: 1,
            fault_plan: Some(FaultPlan::parse("rpc.ingest@1=delay:300", 7).expect("plan")),
            ..test_config()
        };
        let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
        let addr = server.local_addr();

        // Occupy the lone worker with a delayed ingest on one connection.
        let mut slow = connect(addr);
        let payload = crate::proto::encode_request(&Request::Upload(sample_record(1, 0)));
        write_frame(&mut slow, &payload).expect("write upload");

        // Give the reactor a beat to dispatch the upload into the worker.
        std::thread::sleep(Duration::from_millis(50));

        // A deadline-stamped query on a second connection queues behind
        // it; its 1 ms budget is long gone by the time a worker frees up.
        let mut doomed = connect(addr);
        let query = crate::proto::encode_request_with(
            &Request::QueryVolume {
                location: LocationId::new(1),
                period: PeriodId::new(0),
            },
            None,
            Some(1),
        );
        write_frame(&mut doomed, &query).expect("write query");
        match read_frame(&mut doomed, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(bytes) => {
                assert_eq!(
                    crate::proto::decode_response(&bytes).expect("decode"),
                    Response::DeadlineExceeded
                );
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The parked upload still completes and acks.
        match read_frame(&mut slow, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(bytes) => {
                assert_eq!(
                    crate::proto::decode_response(&bytes).expect("decode"),
                    Response::UploadOk {
                        accepted: 1,
                        duplicates: 0
                    }
                );
            }
            other => panic!("expected UploadOk, got {other:?}"),
        }
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn connection_teardown_releases_slots_without_new_accepts() {
        // Regression for the reaping bug: the old accept loop only reaped
        // finished connection handles on a *successful accept*, so
        // resources from closed connections lingered while the listener
        // idled. The reactor retires closed connections on its sweep —
        // the count must drop promptly with nobody connecting.
        let path = temp_archive("reap");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();

        let mut conns: Vec<TcpStream> = (0..5).map(|_| connect(addr)).collect();
        for stream in &mut conns {
            assert!(matches!(
                exchange(stream, &Request::Ping),
                Response::Pong { .. }
            ));
        }
        assert_eq!(server.connection_count(), 5);

        drop(conns);
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.connection_count() > 0 {
            assert!(
                Instant::now() < deadline,
                "closed connections never reaped: {} still counted",
                server.connection_count()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }

    #[test]
    fn query_cache_serves_identical_answers_and_respects_epochs() {
        let path = temp_archive("cache");
        let server = RpcServer::start("127.0.0.1:0", &path, test_config()).expect("start");
        let addr = server.local_addr();
        let mut stream = connect(addr);

        for period in 0..3 {
            let response = exchange(&mut stream, &Request::Upload(sample_record(6, period)));
            assert_eq!(
                response,
                Response::UploadOk {
                    accepted: 1,
                    duplicates: 0
                }
            );
        }
        let location = LocationId::new(6);
        let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
        let query = Request::QueryPoint {
            location,
            periods: periods.clone(),
        };
        let first = match exchange(&mut stream, &query) {
            Response::Estimate(value) => value,
            other => panic!("expected estimate, got {other:?}"),
        };
        // Second answer comes from the cache; it must be bit-for-bit equal.
        let second = match exchange(&mut stream, &query) {
            Response::Estimate(value) => value,
            other => panic!("expected estimate, got {other:?}"),
        };
        assert_eq!(first.to_bits(), second.to_bits());

        // An upload to the same location bumps its epoch: the next answer
        // is recomputed (the periods queried are unchanged, so its value
        // still matches bit for bit).
        let response = exchange(&mut stream, &Request::Upload(sample_record(6, 9)));
        assert_eq!(
            response,
            Response::UploadOk {
                accepted: 1,
                duplicates: 0
            }
        );
        let third = match exchange(&mut stream, &query) {
            Response::Estimate(value) => value,
            other => panic!("expected estimate, got {other:?}"),
        };
        assert_eq!(first.to_bits(), third.to_bits());
        server.shutdown().expect("shutdown");
        cleanup_archive(&path);
    }
}
