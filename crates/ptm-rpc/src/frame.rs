//! Length-prefixed, CRC-checked transport frames.
//!
//! Every RPC payload travels inside one frame:
//!
//! ```text
//! length  u32 LE   payload length in bytes (header excluded)
//! crc32   u32 LE   CRC-32 (IEEE) of the payload, from `ptm-store`
//! payload [u8]     versioned RPC message (see [`crate::proto`])
//! ```
//!
//! The reader distinguishes four situations a byte stream can be in:
//!
//! * a complete, checksum-valid frame — returned as [`ReadOutcome::Frame`];
//! * a clean close *between* frames — [`ReadOutcome::Closed`];
//! * a read timeout *between* frames — [`ReadOutcome::Idle`], so a server
//!   can poll its shutdown flag without dropping a healthy idle connection;
//! * anything else (EOF or timeout mid-frame, an implausible length, a
//!   checksum mismatch) — a hard [`FrameError`], after which the connection
//!   is unusable and must be closed.

use ptm_store::crc32::crc32;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Bytes in the fixed frame header (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default upper bound on a payload: a shade over `ptm-store`'s largest
/// sane archived record (an 8 MiB bitmap), leaving room for small batches.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Transport-level failures.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure (including timeouts mid-frame).
    Io(io::Error),
    /// The peer closed the stream in the middle of a frame.
    Truncated,
    /// The peer stalled (timeout) in the middle of a frame.
    Stalled,
    /// The length field exceeds the configured maximum.
    TooLarge {
        /// Length the header claimed.
        len: u32,
        /// Configured ceiling.
        max: u32,
    },
    /// The payload failed its CRC check.
    BadCrc {
        /// Checksum carried by the header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "frame i/o error: {err}"),
            Self::Truncated => write!(f, "stream closed mid-frame"),
            Self::Stalled => write!(f, "peer stalled mid-frame"),
            Self::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte limit")
            }
            Self::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// What [`read_frame`] found on the stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-valid payload.
    Frame(Vec<u8>),
    /// A read timeout fired before any byte of the next frame arrived.
    Idle,
    /// The peer closed the stream cleanly between frames.
    Closed,
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

enum Fill {
    Full,
    /// EOF before the first byte of the frame.
    CleanEof,
    /// Timeout before the first byte of the frame.
    CleanTimeout,
}

/// Tracks how long a frame has been arriving, so mid-frame read timeouts
/// can be told apart from a genuinely stalled peer.
///
/// A connection's read timeout is typically much shorter than the time a
/// slow-but-live peer may legitimately take to push a whole frame through
/// (servers poll their shutdown flag every few milliseconds). Treating the
/// *first* mid-frame timeout as fatal would disconnect any peer whose
/// header straddles two TCP segments — and because the partially-read
/// bytes live in the caller's buffer, reporting such a timeout as a clean
/// `Idle` instead would silently drop them and desync the stream. The
/// clock starts at the frame's first byte; timeouts within the stall
/// budget keep waiting (the partial bytes stay in the buffer), and only a
/// budget overrun becomes [`FrameError::Stalled`].
struct StallClock {
    budget: Option<Duration>,
    frame_started: Option<Instant>,
}

impl StallClock {
    fn new(budget: Option<Duration>) -> Self {
        Self {
            budget,
            frame_started: None,
        }
    }

    /// Call when bytes of the frame arrive; starts the stall clock.
    fn mark_progress(&mut self) {
        if self.frame_started.is_none() {
            self.frame_started = Some(Instant::now());
        }
    }

    /// True once any byte of the frame has been consumed.
    fn in_frame(&self) -> bool {
        self.frame_started.is_some()
    }

    /// True when a mid-frame timeout has exhausted the budget (with no
    /// budget, the first mid-frame timeout is already a stall).
    fn stalled(&self) -> bool {
        match (self.budget, self.frame_started) {
            (Some(budget), Some(started)) => started.elapsed() >= budget,
            _ => true,
        }
    }
}

/// Fills `buf` completely, or reports a clean EOF/timeout if the frame has
/// not started. EOF mid-frame is a hard error; a timeout mid-frame retries
/// until the clock's stall budget runs out (partial bytes are never
/// dropped — they stay in `buf` across retries).
fn fill(
    reader: &mut impl Read,
    buf: &mut [u8],
    clock: &mut StallClock,
) -> Result<Fill, FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && !clock.in_frame() => return Ok(Fill::CleanEof),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => {
                filled += n;
                clock.mark_progress();
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) if is_timeout(&err) => {
                if filled == 0 && !clock.in_frame() {
                    return Ok(Fill::CleanTimeout);
                }
                if clock.stalled() {
                    return Err(FrameError::Stalled);
                }
                // Mid-frame timeout within budget: the peer is slow, not
                // gone; keep the partial bytes and read again.
            }
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(Fill::Full)
}

/// Reads one frame. `max_len` bounds the accepted payload length.
///
/// Equivalent to [`read_frame_with_stall`] with no stall budget: the first
/// read timeout that lands mid-frame is a hard [`FrameError::Stalled`].
///
/// # Errors
///
/// Any [`FrameError`]; see the module docs for the idle/closed distinction.
pub fn read_frame(reader: &mut impl Read, max_len: u32) -> Result<ReadOutcome, FrameError> {
    read_frame_with_stall(reader, max_len, None)
}

/// Reads one frame, tolerating mid-frame read timeouts for up to
/// `stall_budget` measured from the frame's first byte.
///
/// This is the variant to use on sockets with a short read timeout (e.g. a
/// server polling its shutdown flag): a timeout before the frame starts is
/// still a clean [`ReadOutcome::Idle`], but a timeout after *part* of the
/// frame has arrived keeps waiting — never dropping the partial bytes,
/// never mis-reporting them as idleness — until the budget is exhausted,
/// at which point the peer is declared stalled.
///
/// # Errors
///
/// Any [`FrameError`]; see the module docs for the idle/closed distinction.
pub fn read_frame_with_stall(
    reader: &mut impl Read,
    max_len: u32,
    stall_budget: Option<Duration>,
) -> Result<ReadOutcome, FrameError> {
    let mut clock = StallClock::new(stall_budget);
    let mut header = [0u8; FRAME_HEADER_LEN];
    match fill(reader, &mut header, &mut clock)? {
        Fill::CleanEof => return Ok(ReadOutcome::Closed),
        Fill::CleanTimeout => return Ok(ReadOutcome::Idle),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    match fill(reader, &mut payload, &mut clock)? {
        Fill::Full => {}
        // The header was already consumed, so the frame has started and
        // fill() can only report these before the first byte of a frame.
        Fill::CleanEof | Fill::CleanTimeout => return Err(FrameError::Truncated),
    }
    let actual = crc32(&payload);
    if actual != expected {
        return Err(FrameError::BadCrc { expected, actual });
    }
    Ok(ReadOutcome::Frame(payload))
}

/// Writes one frame (header + payload) and flushes the writer.
///
/// # Errors
///
/// Underlying I/O failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), io::Error> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).expect("vec write");
        out
    }

    #[test]
    fn roundtrip() {
        let bytes = frame_bytes(b"hello frames");
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(payload) => assert_eq!(payload, b"hello frames"),
            other => panic!("expected frame, got {other:?}"),
        }
        // The stream is now cleanly exhausted.
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("eof"),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = frame_bytes(b"");
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(payload) => assert!(payload.is_empty()),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_header_and_mid_payload() {
        let bytes = frame_bytes(b"0123456789");
        for cut in 1..bytes.len() {
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
                .expect_err("truncated stream must fail");
            assert!(matches!(err, FrameError::Truncated), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut bytes = frame_bytes(b"payload under test");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect_err("bad crc");
        assert!(matches!(err, FrameError::BadCrc { .. }), "{err:?}");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor, 1024).expect_err("too large");
        assert!(
            matches!(
                err,
                FrameError::TooLarge {
                    len: u32::MAX,
                    max: 1024
                }
            ),
            "{err:?}"
        );
    }

    /// Yields its chunks one `read` call at a time, returning a timeout
    /// error between chunks — the shape of a slow writer on a socket with
    /// a short read timeout.
    struct SlowReader {
        chunks: std::collections::VecDeque<Vec<u8>>,
        ready: Option<Vec<u8>>,
    }

    impl SlowReader {
        fn new(bytes: &[u8], chunk_len: usize) -> Self {
            let mut chunks: std::collections::VecDeque<Vec<u8>> =
                bytes.chunks(chunk_len).map(<[u8]>::to_vec).collect();
            // The first chunk is immediately readable; each later chunk
            // "arrives" only after one timeout.
            let ready = chunks.pop_front();
            Self { chunks, ready }
        }
    }

    impl Read for SlowReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if let Some(chunk) = self.ready.take() {
                let n = chunk.len().min(buf.len());
                buf[..n].copy_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    self.ready = Some(chunk[n..].to_vec());
                }
                return Ok(n);
            }
            match self.chunks.pop_front() {
                Some(chunk) => {
                    // The chunk becomes readable only after one timeout,
                    // like data that arrives between two poll intervals.
                    self.ready = Some(chunk);
                    Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "poll interval elapsed",
                    ))
                }
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "no more data")),
            }
        }
    }

    #[test]
    fn partial_header_then_timeout_is_stalled_never_idle() {
        // 3 of the 8 header bytes arrive, then the peer goes quiet. With
        // no stall budget this must be a hard Stalled error — reporting it
        // as Idle would drop the 3 bytes and desync the stream.
        let bytes = frame_bytes(b"payload");
        let mut reader = SlowReader::new(&bytes[..3], 3);
        let err = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).expect_err("stalled");
        assert!(matches!(err, FrameError::Stalled), "{err:?}");
    }

    #[test]
    fn timeout_before_any_byte_is_idle() {
        let mut reader = SlowReader::new(&[], 1);
        assert!(matches!(
            read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).expect("idle"),
            ReadOutcome::Idle
        ));
    }

    #[test]
    fn slow_writer_within_stall_budget_completes() {
        // The frame dribbles in one byte per poll interval: a reader with
        // a stall budget keeps the partial bytes and finishes the frame.
        let bytes = frame_bytes(b"slow but alive");
        let mut reader = SlowReader::new(&bytes, 1);
        match read_frame_with_stall(
            &mut reader,
            DEFAULT_MAX_FRAME_LEN,
            Some(Duration::from_secs(5)),
        )
        .expect("read")
        {
            ReadOutcome::Frame(payload) => assert_eq!(payload, b"slow but alive"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn slow_writer_exceeding_stall_budget_is_stalled() {
        // A zero budget turns the first mid-frame timeout into Stalled —
        // and partial header bytes are still never reported as Idle.
        let bytes = frame_bytes(b"never finishes");
        let mut reader = SlowReader::new(&bytes[..5], 1);
        let err = read_frame_with_stall(&mut reader, DEFAULT_MAX_FRAME_LEN, Some(Duration::ZERO))
            .expect_err("stalled");
        assert!(matches!(err, FrameError::Stalled), "{err:?}");
    }

    #[test]
    fn stall_budget_applies_to_payload_too() {
        // Header arrives whole, then the payload stalls: Truncated/Idle
        // must not be reported; the reader waits out the budget and then
        // declares a stall.
        let bytes = frame_bytes(b"0123456789");
        let mut reader = SlowReader::new(&bytes[..FRAME_HEADER_LEN + 4], FRAME_HEADER_LEN);
        let err = read_frame_with_stall(&mut reader, DEFAULT_MAX_FRAME_LEN, Some(Duration::ZERO))
            .expect_err("stalled");
        assert!(matches!(err, FrameError::Stalled), "{err:?}");
    }

    #[test]
    fn error_display_and_source() {
        let err = FrameError::BadCrc {
            expected: 1,
            actual: 2,
        };
        assert!(err.to_string().contains("crc"));
        let err = FrameError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
