//! Length-prefixed, CRC-checked transport frames.
//!
//! Every RPC payload travels inside one frame:
//!
//! ```text
//! length  u32 LE   payload length in bytes (header excluded)
//! crc32   u32 LE   CRC-32 (IEEE) of the payload, from `ptm-store`
//! payload [u8]     versioned RPC message (see [`crate::proto`])
//! ```
//!
//! The reader distinguishes four situations a byte stream can be in:
//!
//! * a complete, checksum-valid frame — returned as [`ReadOutcome::Frame`];
//! * a clean close *between* frames — [`ReadOutcome::Closed`];
//! * a read timeout *between* frames — [`ReadOutcome::Idle`], so a server
//!   can poll its shutdown flag without dropping a healthy idle connection;
//! * anything else (EOF or timeout mid-frame, an implausible length, a
//!   checksum mismatch) — a hard [`FrameError`], after which the connection
//!   is unusable and must be closed.

use ptm_store::crc32::crc32;
use std::io::{self, Read, Write};

/// Bytes in the fixed frame header (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default upper bound on a payload: a shade over `ptm-store`'s largest
/// sane archived record (an 8 MiB bitmap), leaving room for small batches.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Transport-level failures.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure (including timeouts mid-frame).
    Io(io::Error),
    /// The peer closed the stream in the middle of a frame.
    Truncated,
    /// The peer stalled (timeout) in the middle of a frame.
    Stalled,
    /// The length field exceeds the configured maximum.
    TooLarge {
        /// Length the header claimed.
        len: u32,
        /// Configured ceiling.
        max: u32,
    },
    /// The payload failed its CRC check.
    BadCrc {
        /// Checksum carried by the header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "frame i/o error: {err}"),
            Self::Truncated => write!(f, "stream closed mid-frame"),
            Self::Stalled => write!(f, "peer stalled mid-frame"),
            Self::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte limit")
            }
            Self::BadCrc { expected, actual } => {
                write!(f, "frame crc mismatch: header {expected:#010x}, payload {actual:#010x}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// What [`read_frame`] found on the stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-valid payload.
    Frame(Vec<u8>),
    /// A read timeout fired before any byte of the next frame arrived.
    Idle,
    /// The peer closed the stream cleanly between frames.
    Closed,
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

enum Fill {
    Full,
    /// EOF before the first byte.
    CleanEof,
    /// Timeout before the first byte.
    CleanTimeout,
}

/// Fills `buf` completely, or reports a clean EOF/timeout if the stream
/// yielded *nothing*. EOF or timeout after a partial read is a hard error.
fn fill(reader: &mut impl Read, buf: &mut [u8]) -> Result<Fill, FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(Fill::CleanEof),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) if is_timeout(&err) && filled == 0 => return Ok(Fill::CleanTimeout),
            Err(err) if is_timeout(&err) => return Err(FrameError::Stalled),
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(Fill::Full)
}

/// Reads one frame. `max_len` bounds the accepted payload length.
///
/// # Errors
///
/// Any [`FrameError`]; see the module docs for the idle/closed distinction.
pub fn read_frame(reader: &mut impl Read, max_len: u32) -> Result<ReadOutcome, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match fill(reader, &mut header)? {
        Fill::CleanEof => return Ok(ReadOutcome::Closed),
        Fill::CleanTimeout => return Ok(ReadOutcome::Idle),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let expected = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    match fill(reader, &mut payload)? {
        Fill::Full => {}
        Fill::CleanEof => return Err(FrameError::Truncated),
        Fill::CleanTimeout => return Err(FrameError::Stalled),
    }
    let actual = crc32(&payload);
    if actual != expected {
        return Err(FrameError::BadCrc { expected, actual });
    }
    Ok(ReadOutcome::Frame(payload))
}

/// Writes one frame (header + payload) and flushes the writer.
///
/// # Errors
///
/// Underlying I/O failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), io::Error> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).expect("vec write");
        out
    }

    #[test]
    fn roundtrip() {
        let bytes = frame_bytes(b"hello frames");
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(payload) => assert_eq!(payload, b"hello frames"),
            other => panic!("expected frame, got {other:?}"),
        }
        // The stream is now cleanly exhausted.
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("eof"),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = frame_bytes(b"");
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(payload) => assert!(payload.is_empty()),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_header_and_mid_payload() {
        let bytes = frame_bytes(b"0123456789");
        for cut in 1..bytes.len() {
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
                .expect_err("truncated stream must fail");
            assert!(matches!(err, FrameError::Truncated), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut bytes = frame_bytes(b"payload under test");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect_err("bad crc");
        assert!(matches!(err, FrameError::BadCrc { .. }), "{err:?}");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor, 1024).expect_err("too large");
        assert!(
            matches!(err, FrameError::TooLarge { len: u32::MAX, max: 1024 }),
            "{err:?}"
        );
    }

    #[test]
    fn error_display_and_source() {
        let err = FrameError::BadCrc { expected: 1, actual: 2 };
        assert!(err.to_string().contains("crc"));
        let err = FrameError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
