//! Length-prefixed, CRC-checked transport frames.
//!
//! Every RPC payload travels inside one frame:
//!
//! ```text
//! length  u32 LE   payload length in bytes (header excluded)
//! crc32   u32 LE   CRC-32 (IEEE) of the payload, from `ptm-store`
//! payload [u8]     versioned RPC message (see [`crate::proto`])
//! ```
//!
//! The reader distinguishes four situations a byte stream can be in:
//!
//! * a complete, checksum-valid frame — returned as [`ReadOutcome::Frame`];
//! * a clean close *between* frames — [`ReadOutcome::Closed`];
//! * a read timeout *between* frames — [`ReadOutcome::Idle`], so a server
//!   can poll its shutdown flag without dropping a healthy idle connection;
//! * anything else (EOF or timeout mid-frame, an implausible length, a
//!   checksum mismatch) — a hard [`FrameError`], after which the connection
//!   is unusable and must be closed.

use ptm_store::crc32::crc32;
use std::io::{self, IoSlice, Read, Write};
use std::time::{Duration, Instant};

/// Bytes in the fixed frame header (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default upper bound on a payload: a shade over `ptm-store`'s largest
/// sane archived record (an 8 MiB bitmap), leaving room for small batches.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Transport-level failures.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure (including timeouts mid-frame).
    Io(io::Error),
    /// The peer closed the stream in the middle of a frame.
    Truncated,
    /// The peer stalled (timeout) in the middle of a frame.
    Stalled,
    /// The length field exceeds the configured maximum.
    TooLarge {
        /// Length the header claimed.
        len: u32,
        /// Configured ceiling.
        max: u32,
    },
    /// The payload failed its CRC check.
    BadCrc {
        /// Checksum carried by the header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "frame i/o error: {err}"),
            Self::Truncated => write!(f, "stream closed mid-frame"),
            Self::Stalled => write!(f, "peer stalled mid-frame"),
            Self::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max} byte limit")
            }
            Self::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// What [`read_frame`] found on the stream.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-valid payload.
    Frame(Vec<u8>),
    /// A read timeout fired before any byte of the next frame arrived.
    Idle,
    /// The peer closed the stream cleanly between frames.
    Closed,
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

enum Fill {
    Full,
    /// EOF before the first byte of the frame.
    CleanEof,
    /// Timeout before the first byte of the frame.
    CleanTimeout,
}

/// Tracks how long a frame has been arriving, so mid-frame read timeouts
/// can be told apart from a genuinely stalled peer.
///
/// A connection's read timeout is typically much shorter than the time a
/// slow-but-live peer may legitimately take to push a whole frame through
/// (servers poll their shutdown flag every few milliseconds). Treating the
/// *first* mid-frame timeout as fatal would disconnect any peer whose
/// header straddles two TCP segments — and because the partially-read
/// bytes live in the caller's buffer, reporting such a timeout as a clean
/// `Idle` instead would silently drop them and desync the stream. The
/// clock starts at the frame's first byte; timeouts within the stall
/// budget keep waiting (the partial bytes stay in the buffer), and only a
/// budget overrun becomes [`FrameError::Stalled`].
struct StallClock {
    budget: Option<Duration>,
    frame_started: Option<Instant>,
}

impl StallClock {
    fn new(budget: Option<Duration>) -> Self {
        Self {
            budget,
            frame_started: None,
        }
    }

    /// Call when bytes of the frame arrive; starts the stall clock.
    fn mark_progress(&mut self) {
        if self.frame_started.is_none() {
            self.frame_started = Some(Instant::now());
        }
    }

    /// True once any byte of the frame has been consumed.
    fn in_frame(&self) -> bool {
        self.frame_started.is_some()
    }

    /// True when a mid-frame timeout has exhausted the budget (with no
    /// budget, the first mid-frame timeout is already a stall).
    fn stalled(&self) -> bool {
        match (self.budget, self.frame_started) {
            (Some(budget), Some(started)) => started.elapsed() >= budget,
            _ => true,
        }
    }
}

/// Fills `buf` completely, or reports a clean EOF/timeout if the frame has
/// not started. EOF mid-frame is a hard error; a timeout mid-frame retries
/// until the clock's stall budget runs out (partial bytes are never
/// dropped — they stay in `buf` across retries).
fn fill(
    reader: &mut impl Read,
    buf: &mut [u8],
    clock: &mut StallClock,
) -> Result<Fill, FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && !clock.in_frame() => return Ok(Fill::CleanEof),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => {
                filled += n;
                clock.mark_progress();
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) if is_timeout(&err) => {
                if filled == 0 && !clock.in_frame() {
                    return Ok(Fill::CleanTimeout);
                }
                if clock.stalled() {
                    return Err(FrameError::Stalled);
                }
                // Mid-frame timeout within budget: the peer is slow, not
                // gone; keep the partial bytes and read again.
            }
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(Fill::Full)
}

/// Reads one frame. `max_len` bounds the accepted payload length.
///
/// Equivalent to [`read_frame_with_stall`] with no stall budget: the first
/// read timeout that lands mid-frame is a hard [`FrameError::Stalled`].
///
/// # Errors
///
/// Any [`FrameError`]; see the module docs for the idle/closed distinction.
pub fn read_frame(reader: &mut impl Read, max_len: u32) -> Result<ReadOutcome, FrameError> {
    read_frame_with_stall(reader, max_len, None)
}

/// Reads one frame, tolerating mid-frame read timeouts for up to
/// `stall_budget` measured from the frame's first byte.
///
/// This is the variant to use on sockets with a short read timeout (e.g. a
/// server polling its shutdown flag): a timeout before the frame starts is
/// still a clean [`ReadOutcome::Idle`], but a timeout after *part* of the
/// frame has arrived keeps waiting — never dropping the partial bytes,
/// never mis-reporting them as idleness — until the budget is exhausted,
/// at which point the peer is declared stalled.
///
/// # Errors
///
/// Any [`FrameError`]; see the module docs for the idle/closed distinction.
pub fn read_frame_with_stall(
    reader: &mut impl Read,
    max_len: u32,
    stall_budget: Option<Duration>,
) -> Result<ReadOutcome, FrameError> {
    let mut clock = StallClock::new(stall_budget);
    let mut header = [0u8; FRAME_HEADER_LEN];
    match fill(reader, &mut header, &mut clock)? {
        Fill::CleanEof => return Ok(ReadOutcome::Closed),
        Fill::CleanTimeout => return Ok(ReadOutcome::Idle),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    match fill(reader, &mut payload, &mut clock)? {
        Fill::Full => {}
        // The header was already consumed, so the frame has started and
        // fill() can only report these before the first byte of a frame.
        Fill::CleanEof | Fill::CleanTimeout => return Err(FrameError::Truncated),
    }
    let actual = crc32(&payload);
    if actual != expected {
        return Err(FrameError::BadCrc { expected, actual });
    }
    Ok(ReadOutcome::Frame(payload))
}

/// Writes one frame (header + payload) and flushes the writer.
///
/// # Errors
///
/// Underlying I/O failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), io::Error> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Writes one frame with a vectored write — header and payload go out in a
/// single syscall with no staging copy of the payload — and flushes.
///
/// Behaviorally identical to [`write_frame`]; this is the zero-copy
/// variant for hot paths that already hold the encoded payload.
///
/// # Errors
///
/// Underlying I/O failures (a `write` that makes no progress surfaces as
/// [`io::ErrorKind::WriteZero`]).
pub fn write_frame_vectored(writer: &mut impl Write, payload: &[u8]) -> Result<(), io::Error> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    let total = FRAME_HEADER_LEN + payload.len();
    let mut written = 0usize;
    while written < total {
        let result = if written < FRAME_HEADER_LEN {
            writer.write_vectored(&[IoSlice::new(&header[written..]), IoSlice::new(payload)])
        } else {
            writer.write(&payload[written - FRAME_HEADER_LEN..])
        };
        match result {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "frame write made no progress",
                ))
            }
            Ok(n) => written += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    writer.flush()
}

/// Appends one frame to `out`, letting `build` encode the payload directly
/// into the buffer — no intermediate payload `Vec`. The 8-byte header is
/// reserved up front and backfilled with the length and CRC once the
/// payload is in place.
///
/// This is the write-side half of the zero-copy wire path: a connection's
/// reusable output buffer accumulates any number of frames (ack batching)
/// and ships them with one write.
pub fn append_frame_with<F: FnOnce(&mut Vec<u8>)>(out: &mut Vec<u8>, build: F) {
    let header_at = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    build(out);
    let payload_len = out.len() - header_at - FRAME_HEADER_LEN;
    let crc = crc32(&out[header_at + FRAME_HEADER_LEN..]);
    out[header_at..header_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[header_at + 4..header_at + FRAME_HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
}

/// Bytes each [`FrameDecoder::read_from`] call asks the stream for, and
/// the spare capacity the decoder keeps available between reads.
const READ_CHUNK: usize = 16 * 1024;

/// Buffer size above which [`FrameDecoder::reclaim`] shrinks an emptied
/// decoder back down, so one oversized frame does not pin its high-water
/// mark forever.
const RECLAIM_ABOVE: usize = 256 * 1024;

/// An incremental, zero-copy frame decoder over one reusable buffer.
///
/// Where [`read_frame`] pulls a frame out of a blocking stream — blocking
/// until it completes and allocating a fresh payload `Vec` — the decoder
/// is the nonblocking half of the same protocol: feed it whatever bytes
/// the socket has right now with [`FrameDecoder::read_from`], then drain
/// complete frames with [`FrameDecoder::next_frame`], which yields each
/// CRC-checked payload **in place** as a slice of the buffer. In steady
/// state (frames no larger than the buffer's high-water mark) the decode
/// path performs no allocation per frame; consumed bytes are compacted
/// away lazily before the next read.
///
/// The caller owns the idle/stalled policy: [`FrameDecoder::has_partial`]
/// says whether a frame has started arriving, which is what distinguishes
/// a quiet-but-healthy connection from a peer stalled mid-frame (the
/// [`StallClock`] distinction, externalized).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// One past the last buffered byte.
    end: usize,
    max_len: u32,
}

impl FrameDecoder {
    /// Creates a decoder accepting payloads up to `max_len` bytes.
    pub fn new(max_len: u32) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            end: 0,
            max_len,
        }
    }

    /// Bytes buffered but not yet consumed by [`FrameDecoder::next_frame`].
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// True when part of a frame has arrived — after draining complete
    /// frames, any leftover bytes are a frame still in flight. This is the
    /// idle-versus-stalled discriminator: a timeout with `has_partial()`
    /// false is a healthy idle connection; with it true, a peer that has
    /// exhausted its stall budget is stuck mid-frame.
    pub fn has_partial(&self) -> bool {
        self.end > self.start
    }

    /// Makes room for the next read: compacts consumed bytes to the front
    /// when the tail is short on space, and grows the buffer only when a
    /// frame genuinely needs more than the current capacity.
    fn ensure_spare(&mut self) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        if self.buf.len() - self.end >= READ_CHUNK {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        // If a frame header is already buffered, size for the whole frame;
        // otherwise a chunk of spare is plenty.
        let mut target = self.end + READ_CHUNK;
        if self.end >= 4 {
            let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
            if len <= self.max_len {
                target = target.max(FRAME_HEADER_LEN + len as usize);
            }
        }
        if self.buf.len() < target {
            self.buf.resize(target, 0);
        }
    }

    /// Reads once from `reader` into the buffer, returning how many bytes
    /// arrived. `Ok(0)` is end-of-stream; `WouldBlock`/`TimedOut` errors
    /// pass through untouched for the caller's idle/stall policy.
    ///
    /// # Errors
    ///
    /// Whatever the underlying read reports.
    pub fn read_from(&mut self, reader: &mut impl Read) -> io::Result<usize> {
        self.ensure_spare();
        let n = reader.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Yields the next complete, CRC-checked frame payload as an in-place
    /// slice, `Ok(None)` when more bytes are needed first.
    ///
    /// The returned slice borrows the decoder's buffer; it stays valid
    /// until the next call that touches the decoder (the borrow checker
    /// enforces exactly that).
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] or [`FrameError::BadCrc`]; both leave the
    /// stream unusable, matching [`read_frame`].
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let avail = self.end - self.start;
        if avail < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let h = self.start;
        let len = u32::from_le_bytes([
            self.buf[h],
            self.buf[h + 1],
            self.buf[h + 2],
            self.buf[h + 3],
        ]);
        let expected = u32::from_le_bytes([
            self.buf[h + 4],
            self.buf[h + 5],
            self.buf[h + 6],
            self.buf[h + 7],
        ]);
        if len > self.max_len {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_len,
            });
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if avail < total {
            return Ok(None);
        }
        let payload_start = h + FRAME_HEADER_LEN;
        let payload_end = payload_start + len as usize;
        let actual = crc32(&self.buf[payload_start..payload_end]);
        if actual != expected {
            return Err(FrameError::BadCrc { expected, actual });
        }
        self.start += total;
        Ok(Some(&self.buf[payload_start..payload_end]))
    }

    /// Releases an oversized buffer once it has fully drained, so one
    /// large frame does not pin hundreds of kilobytes per connection for
    /// the rest of its life. A no-op while bytes are buffered or while the
    /// buffer is already modest (the steady state stays allocation-free).
    pub fn reclaim(&mut self) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            if self.buf.len() > RECLAIM_ABOVE {
                self.buf = Vec::new();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).expect("vec write");
        out
    }

    #[test]
    fn roundtrip() {
        let bytes = frame_bytes(b"hello frames");
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(payload) => assert_eq!(payload, b"hello frames"),
            other => panic!("expected frame, got {other:?}"),
        }
        // The stream is now cleanly exhausted.
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("eof"),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = frame_bytes(b"");
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(payload) => assert!(payload.is_empty()),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_header_and_mid_payload() {
        let bytes = frame_bytes(b"0123456789");
        for cut in 1..bytes.len() {
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
                .expect_err("truncated stream must fail");
            assert!(matches!(err, FrameError::Truncated), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut bytes = frame_bytes(b"payload under test");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).expect_err("bad crc");
        assert!(matches!(err, FrameError::BadCrc { .. }), "{err:?}");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor, 1024).expect_err("too large");
        assert!(
            matches!(
                err,
                FrameError::TooLarge {
                    len: u32::MAX,
                    max: 1024
                }
            ),
            "{err:?}"
        );
    }

    /// Yields its chunks one `read` call at a time, returning a timeout
    /// error between chunks — the shape of a slow writer on a socket with
    /// a short read timeout.
    struct SlowReader {
        chunks: std::collections::VecDeque<Vec<u8>>,
        ready: Option<Vec<u8>>,
    }

    impl SlowReader {
        fn new(bytes: &[u8], chunk_len: usize) -> Self {
            let mut chunks: std::collections::VecDeque<Vec<u8>> =
                bytes.chunks(chunk_len).map(<[u8]>::to_vec).collect();
            // The first chunk is immediately readable; each later chunk
            // "arrives" only after one timeout.
            let ready = chunks.pop_front();
            Self { chunks, ready }
        }
    }

    impl Read for SlowReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if let Some(chunk) = self.ready.take() {
                let n = chunk.len().min(buf.len());
                buf[..n].copy_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    self.ready = Some(chunk[n..].to_vec());
                }
                return Ok(n);
            }
            match self.chunks.pop_front() {
                Some(chunk) => {
                    // The chunk becomes readable only after one timeout,
                    // like data that arrives between two poll intervals.
                    self.ready = Some(chunk);
                    Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "poll interval elapsed",
                    ))
                }
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "no more data")),
            }
        }
    }

    #[test]
    fn partial_header_then_timeout_is_stalled_never_idle() {
        // 3 of the 8 header bytes arrive, then the peer goes quiet. With
        // no stall budget this must be a hard Stalled error — reporting it
        // as Idle would drop the 3 bytes and desync the stream.
        let bytes = frame_bytes(b"payload");
        let mut reader = SlowReader::new(&bytes[..3], 3);
        let err = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).expect_err("stalled");
        assert!(matches!(err, FrameError::Stalled), "{err:?}");
    }

    #[test]
    fn timeout_before_any_byte_is_idle() {
        let mut reader = SlowReader::new(&[], 1);
        assert!(matches!(
            read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).expect("idle"),
            ReadOutcome::Idle
        ));
    }

    #[test]
    fn slow_writer_within_stall_budget_completes() {
        // The frame dribbles in one byte per poll interval: a reader with
        // a stall budget keeps the partial bytes and finishes the frame.
        let bytes = frame_bytes(b"slow but alive");
        let mut reader = SlowReader::new(&bytes, 1);
        match read_frame_with_stall(
            &mut reader,
            DEFAULT_MAX_FRAME_LEN,
            Some(Duration::from_secs(5)),
        )
        .expect("read")
        {
            ReadOutcome::Frame(payload) => assert_eq!(payload, b"slow but alive"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn slow_writer_exceeding_stall_budget_is_stalled() {
        // A zero budget turns the first mid-frame timeout into Stalled —
        // and partial header bytes are still never reported as Idle.
        let bytes = frame_bytes(b"never finishes");
        let mut reader = SlowReader::new(&bytes[..5], 1);
        let err = read_frame_with_stall(&mut reader, DEFAULT_MAX_FRAME_LEN, Some(Duration::ZERO))
            .expect_err("stalled");
        assert!(matches!(err, FrameError::Stalled), "{err:?}");
    }

    #[test]
    fn stall_budget_applies_to_payload_too() {
        // Header arrives whole, then the payload stalls: Truncated/Idle
        // must not be reported; the reader waits out the budget and then
        // declares a stall.
        let bytes = frame_bytes(b"0123456789");
        let mut reader = SlowReader::new(&bytes[..FRAME_HEADER_LEN + 4], FRAME_HEADER_LEN);
        let err = read_frame_with_stall(&mut reader, DEFAULT_MAX_FRAME_LEN, Some(Duration::ZERO))
            .expect_err("stalled");
        assert!(matches!(err, FrameError::Stalled), "{err:?}");
    }

    #[test]
    fn error_display_and_source() {
        let err = FrameError::BadCrc {
            expected: 1,
            actual: 2,
        };
        assert!(err.to_string().contains("crc"));
        let err = FrameError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn decoder_extracts_multiple_frames_from_one_feed() {
        let mut wire = frame_bytes(b"first");
        wire.extend_from_slice(&frame_bytes(b"second"));
        wire.extend_from_slice(&frame_bytes(b""));
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut cursor = io::Cursor::new(wire);
        assert!(decoder.read_from(&mut cursor).expect("read") > 0);
        assert_eq!(decoder.next_frame().expect("f1"), Some(&b"first"[..]));
        assert_eq!(decoder.next_frame().expect("f2"), Some(&b"second"[..]));
        assert_eq!(decoder.next_frame().expect("f3"), Some(&b""[..]));
        assert_eq!(decoder.next_frame().expect("empty"), None);
        assert!(!decoder.has_partial());
    }

    #[test]
    fn decoder_handles_byte_at_a_time_feeds() {
        let wire = frame_bytes(b"dribbled in slowly");
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut done = false;
        for byte in wire {
            let mut one = io::Cursor::new([byte]);
            decoder.read_from(&mut one).expect("read");
            if let Some(payload) = decoder.next_frame().expect("decode") {
                assert_eq!(payload, b"dribbled in slowly");
                done = true;
            }
        }
        assert!(done);
        assert!(!decoder.has_partial());
    }

    #[test]
    fn decoder_partial_flag_tracks_in_flight_frames() {
        let wire = frame_bytes(b"half");
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        assert!(!decoder.has_partial());
        let mut head = io::Cursor::new(&wire[..3]);
        decoder.read_from(&mut head).expect("read");
        assert!(decoder.next_frame().expect("incomplete").is_none());
        assert!(decoder.has_partial());
        let mut tail = io::Cursor::new(&wire[3..]);
        decoder.read_from(&mut tail).expect("read");
        assert_eq!(decoder.next_frame().expect("frame"), Some(&b"half"[..]));
        assert!(!decoder.has_partial());
    }

    #[test]
    fn decoder_rejects_bad_crc_and_oversized_frames() {
        let mut corrupted = frame_bytes(b"payload");
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xff;
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut cursor = io::Cursor::new(corrupted);
        decoder.read_from(&mut cursor).expect("read");
        assert!(matches!(
            decoder.next_frame(),
            Err(FrameError::BadCrc { .. })
        ));

        let mut decoder = FrameDecoder::new(4);
        let mut cursor = io::Cursor::new(frame_bytes(b"too large for the cap"));
        decoder.read_from(&mut cursor).expect("read");
        assert!(matches!(
            decoder.next_frame(),
            Err(FrameError::TooLarge { max: 4, .. })
        ));
    }

    #[test]
    fn decoder_steady_state_is_allocation_free() {
        // After the first frame sizes the buffer, decoding same-sized
        // frames forever must never grow it again: capacity is stable and
        // the payload slice is borrowed in place.
        let wire = frame_bytes(&[7u8; 1024]);
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut cursor = io::Cursor::new(wire.clone());
        decoder.read_from(&mut cursor).expect("read");
        assert!(decoder.next_frame().expect("first").is_some());
        let steady = decoder.buf.len();
        for _ in 0..64 {
            let mut cursor = io::Cursor::new(wire.clone());
            decoder.read_from(&mut cursor).expect("read");
            assert!(decoder.next_frame().expect("frame").is_some());
            assert_eq!(decoder.buf.len(), steady, "buffer grew in steady state");
        }
    }

    #[test]
    fn decoder_reclaim_shrinks_oversized_buffer_when_drained() {
        let wire = frame_bytes(&vec![3u8; 512 * 1024]);
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut cursor = io::Cursor::new(wire);
        loop {
            decoder.read_from(&mut cursor).expect("read");
            if decoder.next_frame().expect("decode").is_some() {
                break;
            }
        }
        assert!(decoder.buf.len() > RECLAIM_ABOVE);
        decoder.reclaim();
        assert_eq!(decoder.buf.len(), 0);
        // Reclaim with bytes buffered is a no-op.
        let wire = frame_bytes(b"still here");
        let mut head = io::Cursor::new(&wire[..4]);
        decoder.read_from(&mut head).expect("read");
        decoder.reclaim();
        assert!(decoder.has_partial());
    }

    #[test]
    fn append_frame_with_matches_write_frame_bytes() {
        let mut out = Vec::new();
        append_frame_with(&mut out, |buf| buf.extend_from_slice(b"identical"));
        append_frame_with(&mut out, |buf| buf.extend_from_slice(b""));
        let mut expected = frame_bytes(b"identical");
        expected.extend_from_slice(&frame_bytes(b""));
        assert_eq!(out, expected);
    }

    #[test]
    fn vectored_write_round_trips_through_read_frame() {
        let mut wire = Vec::new();
        write_frame_vectored(&mut wire, b"vectored payload").expect("write");
        let mut reader = SlowReader::new(&wire, wire.len());
        match read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).expect("read") {
            ReadOutcome::Frame(payload) => assert_eq!(payload, b"vectored payload"),
            other => panic!("expected frame, got {other:?}"),
        }
    }
}
