//! The versioned RPC message codec carried inside transport frames.
//!
//! Every payload starts with the protocol version and a message tag; v3
//! adds a flags byte and an optional trace-context header between the tag
//! and the body. The body layout depends on the tag (all integers
//! little-endian):
//!
//! ```text
//! byte 0: protocol version (this build speaks 3, decodes 1..=3)
//! byte 1: message tag
//! v3 only:
//!   byte 2: flags (bit 0 = trace context present, bit 1 = deadline
//!           present; other bits must be 0)
//!   if flags bit 0: trace_id u64 | parent_span u64
//!   if flags bit 1: deadline_ms u32 (remaining caller budget)
//!
//! requests:
//!   1 ping          (empty body)
//!   2 upload        record payload (ptm-store codec, runs to frame end)
//!   3 upload batch  count u32 | (len u32 | record payload) * count
//!   4 query volume  location u64 | period u32
//!   5 query point   location u64 | count u16 | period u32 * count
//!   6 query p2p     loc_a u64 | loc_b u64 | count u16 | period u32 * count
//!   7 stats         (empty body; introspection snapshot)
//!
//! responses:
//!   128 pong        version u8 | s u32 | records u64 | flags u8 (bit 0 = degraded)
//!   129 upload ok   accepted u32 | duplicates u32
//!   130 estimate    f64 bits as u64
//!   131 error       code u8 | message len u16 | utf-8 message
//!   132 overloaded  retry_after_ms u32
//!   133 stats       utf-8 JSON document (runs to frame end)
//!   134 deadline exceeded  (empty body; the job sat past its wire deadline)
//!   135 going away  retry_after_ms u32 (server draining; reconnect later)
//! ```
//!
//! Version history: v1 had a `version u8 | s u32` pong body and no
//! overloaded response. v2 extends the pong with a health summary and adds
//! tag 132 for load shedding (see `docs/FAULTS.md`). v3 inserts the flags
//! byte, letting requests carry a trace context (`docs/OBSERVABILITY.md`
//! § Tracing) and a remaining-deadline budget (`docs/RPC.md` § Request
//! lifecycle under overload), and adds the stats introspection pair
//! (tags 7/133) plus the deadline/drain responses (tags 134/135 — encoded
//! as tag 132 for v2 peers, never sent to v1 peers).
//!
//! Older peers keep working: v1/v2 payloads (no flags byte) still decode —
//! the daemon mints a local trace when no context is carried — and replies
//! are encoded in the requester's version so an old client never sees a
//! header it does not understand.
//!
//! Traffic records ride in the exact `ptm-store` on-disk payload encoding,
//! so the daemon archives the bytes it validated and a reader of the
//! archive decodes exactly what the client sent.

use ptm_core::encoding::LocationId;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_store::codec::{decode_record, encode_record};

/// The protocol version this build emits.
pub const PROTOCOL_VERSION: u8 = 3;

/// The oldest protocol version this build still decodes.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Header flag bit: a `trace_id u64 | parent_span u64` pair follows.
const FLAG_TRACE: u8 = 0b0000_0001;

/// Header flag bit: a `deadline_ms u32` remaining-budget field follows
/// (after the trace pair when both flags are set).
const FLAG_DEADLINE: u8 = 0b0000_0010;

/// Every header flag bit this build understands.
const KNOWN_FLAGS: u8 = FLAG_TRACE | FLAG_DEADLINE;

/// Ceiling on periods per query (bounds decoder allocations).
pub const MAX_QUERY_PERIODS: usize = 4096;

/// Ceiling on records per batch upload.
pub const MAX_BATCH_RECORDS: usize = 4096;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message was complete.
    Truncated,
    /// The version byte is outside
    /// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`].
    VersionMismatch {
        /// Version the peer sent.
        got: u8,
        /// Newest version this build speaks.
        want: u8,
    },
    /// A v3 flags byte set bits this build does not know.
    UnknownFlags(u8),
    /// Unknown message tag.
    UnknownTag(u8),
    /// A count or length field exceeds sane bounds.
    BadLength(usize),
    /// Unknown error code byte in an error response.
    UnknownErrorCode(u8),
    /// An error message was not valid UTF-8.
    BadUtf8,
    /// An embedded traffic record failed to decode.
    BadRecord(String),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "message truncated"),
            Self::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version {got} not supported (this build speaks {want})"
                )
            }
            Self::UnknownFlags(flags) => write!(f, "unknown header flag bits {flags:#010b}"),
            Self::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            Self::BadLength(len) => write!(f, "implausible length field {len}"),
            Self::UnknownErrorCode(code) => write!(f, "unknown error code {code}"),
            Self::BadUtf8 => write!(f, "error message is not valid utf-8"),
            Self::BadRecord(reason) => write!(f, "embedded record rejected: {reason}"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Application-level failure reported by the server.
///
/// The discriminants are the on-wire code bytes. Every code is **fatal**
/// for the request that provoked it — re-sending the same bytes yields the
/// same answer — so the client never retries them. Transport-level
/// failures (reset, timeout, mid-frame EOF) are the retryable class and
/// never appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request's version byte is not supported; connection closes.
    VersionMismatch = 1,
    /// The request could not be decoded; connection closes.
    Malformed = 2,
    /// A `(location, period)` slot is already filled with *different*
    /// contents. (An identical re-send is idempotent success, not this.)
    DuplicateConflict = 3,
    /// A query referenced a record the server never received.
    MissingRecord = 4,
    /// The estimator rejected the stored records (e.g. saturated bitmap).
    EstimateFailed = 5,
    /// The daemon could not persist an accepted record.
    Storage = 6,
    /// Unclassified server-side failure.
    Internal = 7,
}

impl ErrorCode {
    fn from_byte(byte: u8) -> Result<Self, ProtoError> {
        Ok(match byte {
            1 => Self::VersionMismatch,
            2 => Self::Malformed,
            3 => Self::DuplicateConflict,
            4 => Self::MissingRecord,
            5 => Self::EstimateFailed,
            6 => Self::Storage,
            7 => Self::Internal,
            other => return Err(ProtoError::UnknownErrorCode(other)),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::VersionMismatch => "version-mismatch",
            Self::Malformed => "malformed",
            Self::DuplicateConflict => "duplicate-conflict",
            Self::MissingRecord => "missing-record",
            Self::EstimateFailed => "estimate-failed",
            Self::Storage => "storage",
            Self::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Upload one traffic record.
    Upload(TrafficRecord),
    /// Upload several records in one frame.
    UploadBatch(Vec<TrafficRecord>),
    /// Plain traffic volume at one location in one period.
    QueryVolume {
        /// Location to query.
        location: LocationId,
        /// Period to query.
        period: PeriodId,
    },
    /// Point persistent traffic over the listed periods (paper Eq. 12).
    QueryPoint {
        /// Location to query.
        location: LocationId,
        /// Periods the vehicle must have appeared in.
        periods: Vec<PeriodId>,
    },
    /// Point-to-point persistent traffic (paper Eq. 21).
    QueryP2p {
        /// First location.
        location_a: LocationId,
        /// Second location.
        location_b: LocationId,
        /// Periods the vehicle must have appeared in at both locations.
        periods: Vec<PeriodId>,
    },
    /// Live introspection snapshot (metrics, shards, recorder tail).
    Stats,
}

/// Trace context carried in a v3 header: which trace the request belongs
/// to and which client-side span is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTrace {
    /// Trace id shared by every span of the round trip.
    pub trace_id: u64,
    /// The sender's open span, which server-side spans parent under.
    pub parent_span: u64,
}

/// A decoded request plus its header metadata: the version the peer spoke
/// (replies must be encoded in it) and the carried trace context, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedRequest {
    /// The request message.
    pub request: Request,
    /// Protocol version of the incoming payload.
    pub version: u8,
    /// Trace context from the v3 header (`None` for v1/v2 or flags bit 0
    /// unset — the daemon then mints a local trace).
    pub trace: Option<WireTrace>,
    /// Remaining caller budget from the v3 header (`None` for v1/v2 or
    /// flags bit 1 unset). The receiver anchors this at frame arrival to
    /// drop doomed work instead of executing it.
    pub deadline_ms: Option<u32>,
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`] (doubles as the health/readiness probe).
    Pong {
        /// Server protocol version.
        version: u8,
        /// Representative-bit count `s` the server estimates with.
        s: u32,
        /// Records currently held by the estimation engine.
        records: u64,
        /// Whether the server is in degraded read-only mode (archive
        /// backend failing; uploads are shed, queries still answered).
        degraded: bool,
    },
    /// Reply to an upload: how many records were newly accepted and how
    /// many were identical re-sends (idempotent duplicates).
    UploadOk {
        /// Records stored for the first time.
        accepted: u32,
        /// Identical re-sends absorbed without effect.
        duplicates: u32,
    },
    /// Reply to a query.
    Estimate(f64),
    /// Application-level failure.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server shed this request under load (or in degraded mode).
    ///
    /// Unlike [`Response::Error`] this is *retryable*: nothing about the
    /// request was wrong, the server just declined to do the work right
    /// now. Clients should wait at least `retry_after_ms` before retrying.
    Overloaded {
        /// Server's backoff hint, in milliseconds.
        retry_after_ms: u32,
    },
    /// Reply to [`Request::Stats`]: a JSON introspection document (schema
    /// in `docs/OBSERVABILITY.md` § Live introspection).
    Stats(String),
    /// The request's wire deadline expired before a worker picked it up;
    /// the server dropped it unexecuted. Retryable if the caller still has
    /// budget left (v3 only; encoded as [`Response::Overloaded`] for v2).
    DeadlineExceeded,
    /// The server is draining for shutdown: it finished or will finish
    /// in-flight work but takes nothing new. Retryable against another
    /// (or the restarted) instance after `retry_after_ms` (v3 only;
    /// encoded as [`Response::Overloaded`] for v2, clean close for v1).
    GoingAway {
        /// Hand-off hint: how long to wait before reconnecting, ms.
        retry_after_ms: u32,
    },
}

impl Response {
    /// Whether this variant reports a failure rather than a result.
    ///
    /// This list is the authoritative error range of the protocol: the
    /// ptm-analyze `error-retryability` rule checks that every variant
    /// named here appears in the client's retryable-vs-fatal
    /// classification (`classify_response` in `client.rs`), so a future
    /// error variant cannot silently default to fatal.
    #[must_use]
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            Response::Error { .. }
                | Response::Overloaded { .. }
                | Response::DeadlineExceeded
                | Response::GoingAway { .. }
        )
    }
}

const TAG_PING: u8 = 1;
const TAG_UPLOAD: u8 = 2;
const TAG_UPLOAD_BATCH: u8 = 3;
const TAG_QUERY_VOLUME: u8 = 4;
const TAG_QUERY_POINT: u8 = 5;
const TAG_QUERY_P2P: u8 = 6;
const TAG_STATS: u8 = 7;
const TAG_PONG: u8 = 128;
const TAG_UPLOAD_OK: u8 = 129;
const TAG_ESTIMATE: u8 = 130;
const TAG_ERROR: u8 = 131;
const TAG_OVERLOADED: u8 = 132;
const TAG_STATS_REPLY: u8 = 133;
const TAG_DEADLINE_EXCEEDED: u8 = 134;
const TAG_GOING_AWAY: u8 = 135;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let slice = self.take(2)?;
        let mut bytes = [0u8; 2];
        bytes.copy_from_slice(slice);
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let slice = self.take(4)?;
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(slice);
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let slice = self.take(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(slice);
        Ok(u64::from_le_bytes(bytes))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(rest))
        }
    }
}

/// Builds a payload header in the requested version: v1/v2 are
/// `version | tag`, v3 appends the flags byte and, when present, the
/// 16-byte trace header and the 4-byte remaining-deadline field.
fn header_for(version: u8, tag: u8, trace: Option<WireTrace>, deadline_ms: Option<u32>) -> Vec<u8> {
    let mut out = Vec::new();
    header_into(version, tag, trace, deadline_ms, &mut out);
    out
}

/// Appends the header for the requested version to `out` — the
/// buffer-reuse form of [`header_for`].
fn header_into(
    version: u8,
    tag: u8,
    trace: Option<WireTrace>,
    deadline_ms: Option<u32>,
    out: &mut Vec<u8>,
) {
    out.push(version);
    out.push(tag);
    if version >= 3 {
        let mut flags = 0u8;
        if trace.is_some() {
            flags |= FLAG_TRACE;
        }
        if deadline_ms.is_some() {
            flags |= FLAG_DEADLINE;
        }
        out.push(flags);
        if let Some(t) = trace {
            out.extend_from_slice(&t.trace_id.to_le_bytes());
            out.extend_from_slice(&t.parent_span.to_le_bytes());
        }
        if let Some(budget) = deadline_ms {
            out.extend_from_slice(&budget.to_le_bytes());
        }
    }
}

/// Reads the protocol version a buffered payload claims to speak without
/// decoding the rest, `None` on an empty payload. The shed path uses this
/// to pick an encoding every peer version survives before any full decode.
pub fn peek_version(payload: &[u8]) -> Option<u8> {
    payload.first().copied()
}

/// Reads `version | tag | [flags | trace | deadline]`, accepting every
/// version in [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`].
#[allow(clippy::type_complexity)]
fn read_header(
    reader: &mut Reader<'_>,
) -> Result<(u8, u8, Option<WireTrace>, Option<u32>), ProtoError> {
    let version = reader.u8()?;
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ProtoError::VersionMismatch {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let tag = reader.u8()?;
    let mut trace = None;
    let mut deadline_ms = None;
    if version >= 3 {
        let flags = reader.u8()?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(ProtoError::UnknownFlags(flags));
        }
        if flags & FLAG_TRACE != 0 {
            trace = Some(WireTrace {
                trace_id: reader.u64()?,
                parent_span: reader.u64()?,
            });
        }
        if flags & FLAG_DEADLINE != 0 {
            deadline_ms = Some(reader.u32()?);
        }
    }
    Ok((version, tag, trace, deadline_ms))
}

fn push_periods(out: &mut Vec<u8>, periods: &[PeriodId]) {
    out.extend_from_slice(&(periods.len() as u16).to_le_bytes());
    for period in periods {
        out.extend_from_slice(&period.get().to_le_bytes());
    }
}

fn read_periods(reader: &mut Reader<'_>) -> Result<Vec<PeriodId>, ProtoError> {
    let count = reader.u16()? as usize;
    if count > MAX_QUERY_PERIODS {
        return Err(ProtoError::BadLength(count));
    }
    (0..count)
        .map(|_| Ok(PeriodId::new(reader.u32()?)))
        .collect()
}

fn read_embedded_record(bytes: &[u8]) -> Result<TrafficRecord, ProtoError> {
    decode_record(bytes).map_err(|err| ProtoError::BadRecord(err.to_string()))
}

/// Encodes a request payload (framing not included), carrying no trace
/// context or deadline.
pub fn encode_request(request: &Request) -> Vec<u8> {
    encode_request_with(request, None, None)
}

/// Encodes a request payload with an optional trace context in the v3
/// header (framing not included).
pub fn encode_request_traced(request: &Request, trace: Option<WireTrace>) -> Vec<u8> {
    encode_request_with(request, trace, None)
}

/// Encodes a request payload with optional trace context and remaining
/// deadline budget in the v3 header (framing not included).
pub fn encode_request_with(
    request: &Request,
    trace: Option<WireTrace>,
    deadline_ms: Option<u32>,
) -> Vec<u8> {
    let header = |tag| header_for(PROTOCOL_VERSION, tag, trace, deadline_ms);
    match request {
        Request::Ping => header(TAG_PING),
        Request::Upload(record) => {
            let mut out = header(TAG_UPLOAD);
            out.extend_from_slice(&encode_record(record));
            out
        }
        Request::UploadBatch(records) => {
            let mut out = header(TAG_UPLOAD_BATCH);
            out.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for record in records {
                let payload = encode_record(record);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&payload);
            }
            out
        }
        Request::QueryVolume { location, period } => {
            let mut out = header(TAG_QUERY_VOLUME);
            out.extend_from_slice(&location.get().to_le_bytes());
            out.extend_from_slice(&period.get().to_le_bytes());
            out
        }
        Request::QueryPoint { location, periods } => {
            let mut out = header(TAG_QUERY_POINT);
            out.extend_from_slice(&location.get().to_le_bytes());
            push_periods(&mut out, periods);
            out
        }
        Request::QueryP2p {
            location_a,
            location_b,
            periods,
        } => {
            let mut out = header(TAG_QUERY_P2P);
            out.extend_from_slice(&location_a.get().to_le_bytes());
            out.extend_from_slice(&location_b.get().to_le_bytes());
            push_periods(&mut out, periods);
            out
        }
        Request::Stats => header(TAG_STATS),
    }
}

/// Decodes a request payload together with its header metadata (peer
/// version and optional trace context).
///
/// # Errors
///
/// Any [`ProtoError`] — version mismatch, truncation, bad tags, flags or
/// lengths, malformed embedded records, trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<DecodedRequest, ProtoError> {
    let mut r = Reader::new(payload);
    let (version, tag, trace, deadline_ms) = read_header(&mut r)?;
    let request = match tag {
        TAG_PING => Request::Ping,
        TAG_UPLOAD => Request::Upload(read_embedded_record(r.rest())?),
        TAG_UPLOAD_BATCH => {
            let count = r.u32()? as usize;
            if count > MAX_BATCH_RECORDS {
                return Err(ProtoError::BadLength(count));
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                let len = r.u32()? as usize;
                records.push(read_embedded_record(r.take(len)?)?);
            }
            Request::UploadBatch(records)
        }
        TAG_QUERY_VOLUME => Request::QueryVolume {
            location: LocationId::new(r.u64()?),
            period: PeriodId::new(r.u32()?),
        },
        TAG_QUERY_POINT => Request::QueryPoint {
            location: LocationId::new(r.u64()?),
            periods: read_periods(&mut r)?,
        },
        TAG_QUERY_P2P => Request::QueryP2p {
            location_a: LocationId::new(r.u64()?),
            location_b: LocationId::new(r.u64()?),
            periods: read_periods(&mut r)?,
        },
        TAG_STATS => Request::Stats,
        other => return Err(ProtoError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(DecodedRequest {
        request,
        version,
        trace,
        deadline_ms,
    })
}

/// Encodes a response payload (framing not included) in
/// [`PROTOCOL_VERSION`].
pub fn encode_response(response: &Response) -> Vec<u8> {
    encode_response_for(PROTOCOL_VERSION, response)
}

/// Encodes a response payload in the given protocol version, so a reply
/// never carries a header newer than what the requester speaks.
pub fn encode_response_for(version: u8, response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    encode_response_into(version, response, &mut out);
    out
}

/// Encodes a response payload in the given protocol version directly into
/// `out` — the zero-allocation form of [`encode_response_for`] used by the
/// reactor's reusable per-connection write buffers.
pub fn encode_response_into(version: u8, response: &Response, out: &mut Vec<u8>) {
    match response {
        Response::Pong {
            version: peer,
            s,
            records,
            degraded,
        } => {
            header_into(version, TAG_PONG, None, None, out);
            out.push(*peer);
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&records.to_le_bytes());
            out.push(u8::from(*degraded));
        }
        Response::UploadOk {
            accepted,
            duplicates,
        } => {
            header_into(version, TAG_UPLOAD_OK, None, None, out);
            out.extend_from_slice(&accepted.to_le_bytes());
            out.extend_from_slice(&duplicates.to_le_bytes());
        }
        Response::Estimate(value) => {
            header_into(version, TAG_ESTIMATE, None, None, out);
            out.extend_from_slice(&value.to_bits().to_le_bytes());
        }
        Response::Error { code, message } => {
            header_into(version, TAG_ERROR, None, None, out);
            out.push(*code as u8);
            let bytes = message.as_bytes();
            let len = bytes.len().min(u16::MAX as usize);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&bytes[..len]);
        }
        Response::Overloaded { retry_after_ms } => {
            header_into(version, TAG_OVERLOADED, None, None, out);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Response::Stats(json) => {
            header_into(version, TAG_STATS_REPLY, None, None, out);
            out.extend_from_slice(json.as_bytes());
        }
        // The v3-only overload answers downgrade to the v2 shed tag so an
        // older peer still gets a decodable, retryable frame. v1 predates
        // every overload tag; the server closes those connections cleanly
        // instead of encoding for them (same discipline as Overloaded).
        Response::DeadlineExceeded => {
            if version >= 3 {
                header_into(version, TAG_DEADLINE_EXCEEDED, None, None, out);
            } else {
                header_into(version, TAG_OVERLOADED, None, None, out);
                out.extend_from_slice(&0u32.to_le_bytes());
            }
        }
        Response::GoingAway { retry_after_ms } => {
            let tag = if version >= 3 {
                TAG_GOING_AWAY
            } else {
                TAG_OVERLOADED
            };
            header_into(version, tag, None, None, out);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
    }
}

/// Decodes a response payload.
///
/// # Errors
///
/// Any [`ProtoError`].
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut r = Reader::new(payload);
    let (_version, tag, _trace, _deadline) = read_header(&mut r)?;
    let response = match tag {
        TAG_PONG => Response::Pong {
            version: r.u8()?,
            s: r.u32()?,
            records: r.u64()?,
            degraded: r.u8()? & 1 != 0,
        },
        TAG_UPLOAD_OK => Response::UploadOk {
            accepted: r.u32()?,
            duplicates: r.u32()?,
        },
        TAG_ESTIMATE => Response::Estimate(f64::from_bits(r.u64()?)),
        TAG_ERROR => {
            let code = ErrorCode::from_byte(r.u8()?)?;
            let len = r.u16()? as usize;
            let message = std::str::from_utf8(r.take(len)?)
                .map_err(|_| ProtoError::BadUtf8)?
                .to_owned();
            Response::Error { code, message }
        }
        TAG_OVERLOADED => Response::Overloaded {
            retry_after_ms: r.u32()?,
        },
        TAG_STATS_REPLY => Response::Stats(
            std::str::from_utf8(r.rest())
                .map_err(|_| ProtoError::BadUtf8)?
                .to_owned(),
        ),
        TAG_DEADLINE_EXCEEDED => Response::DeadlineExceeded,
        TAG_GOING_AWAY => Response::GoingAway {
            retry_after_ms: r.u32()?,
        },
        other => return Err(ProtoError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_record(seed: u64, period: u32) -> TrafficRecord {
        let scheme = EncodingScheme::new(seed, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut record = TrafficRecord::new(
            LocationId::new(9),
            PeriodId::new(period),
            BitmapSize::new(1024).expect("pow2"),
        );
        for _ in 0..150 {
            let v = VehicleSecrets::generate(&mut rng, 3);
            record.encode(&scheme, &v);
        }
        record
    }

    fn periods(n: u32) -> Vec<PeriodId> {
        (0..n).map(PeriodId::new).collect()
    }

    #[test]
    fn every_request_roundtrips() {
        let requests = [
            Request::Ping,
            Request::Upload(sample_record(1, 0)),
            Request::UploadBatch(vec![sample_record(2, 0), sample_record(2, 1)]),
            Request::UploadBatch(Vec::new()),
            Request::QueryVolume {
                location: LocationId::new(4),
                period: PeriodId::new(7),
            },
            Request::QueryPoint {
                location: LocationId::new(5),
                periods: periods(6),
            },
            Request::QueryP2p {
                location_a: LocationId::new(1),
                location_b: LocationId::new(2),
                periods: periods(3),
            },
            Request::Stats,
        ];
        for request in requests {
            let payload = encode_request(&request);
            let decoded = decode_request(&payload).expect("decode");
            assert_eq!(decoded.request, request, "{request:?}");
            assert_eq!(decoded.version, PROTOCOL_VERSION);
            assert_eq!(decoded.trace, None, "untraced encode carries no context");
        }
    }

    #[test]
    fn traced_request_roundtrips_context() {
        let trace = WireTrace {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            parent_span: 42,
        };
        let payload = encode_request_traced(&Request::Ping, Some(trace));
        let decoded = decode_request(&payload).expect("decode");
        assert_eq!(decoded.request, Request::Ping);
        assert_eq!(decoded.trace, Some(trace));
    }

    #[test]
    fn v1_and_v2_requests_still_decode() {
        // Old headers have no flags byte; the body starts right after the
        // tag and no trace context is carried.
        for version in [1u8, 2] {
            let mut payload = vec![version, TAG_QUERY_VOLUME];
            payload.extend_from_slice(&9u64.to_le_bytes());
            payload.extend_from_slice(&4u32.to_le_bytes());
            let decoded = decode_request(&payload).expect("old version decodes");
            assert_eq!(decoded.version, version);
            assert_eq!(decoded.trace, None);
            assert_eq!(
                decoded.request,
                Request::QueryVolume {
                    location: LocationId::new(9),
                    period: PeriodId::new(4),
                }
            );
        }
    }

    #[test]
    fn responses_encode_in_requester_version() {
        let response = Response::Overloaded { retry_after_ms: 9 };
        let v2 = encode_response_for(2, &response);
        assert_eq!(v2[0], 2);
        assert_eq!(v2.len(), 2 + 4, "v2 header has no flags byte");
        assert_eq!(decode_response(&v2), Ok(response.clone()));
        let v3 = encode_response_for(3, &response);
        assert_eq!(v3[0], 3);
        assert_eq!(v3.len(), 3 + 4, "v3 header has a flags byte");
        assert_eq!(decode_response(&v3), Ok(response));
    }

    #[test]
    fn unknown_flag_bits_rejected() {
        let mut payload = encode_request(&Request::Ping);
        payload[2] = 0b0000_0100;
        assert_eq!(
            decode_request(&payload),
            Err(ProtoError::UnknownFlags(0b0000_0100))
        );
    }

    #[test]
    fn deadline_roundtrips_alone_and_with_trace() {
        let payload = encode_request_with(&Request::Ping, None, Some(750));
        let decoded = decode_request(&payload).expect("decode");
        assert_eq!(decoded.deadline_ms, Some(750));
        assert_eq!(decoded.trace, None);

        let trace = WireTrace {
            trace_id: 7,
            parent_span: 9,
        };
        let payload = encode_request_with(
            &Request::QueryVolume {
                location: LocationId::new(3),
                period: PeriodId::new(1),
            },
            Some(trace),
            Some(u32::MAX),
        );
        let decoded = decode_request(&payload).expect("decode");
        assert_eq!(decoded.trace, Some(trace));
        assert_eq!(decoded.deadline_ms, Some(u32::MAX));
        assert_eq!(
            decoded.request,
            Request::QueryVolume {
                location: LocationId::new(3),
                period: PeriodId::new(1),
            }
        );
    }

    #[test]
    fn undeadlined_request_carries_no_deadline() {
        let payload = encode_request_traced(&Request::Ping, None);
        let decoded = decode_request(&payload).expect("decode");
        assert_eq!(decoded.deadline_ms, None);
    }

    #[test]
    fn overload_answers_downgrade_to_v2_overloaded() {
        // A v2 peer never sees tags 134/135: both drain/deadline answers
        // arrive as the v2 shed tag it already understands.
        for (response, want_hint) in [
            (Response::DeadlineExceeded, 0),
            (Response::GoingAway { retry_after_ms: 80 }, 80),
        ] {
            let v2 = encode_response_for(2, &response);
            assert_eq!(v2[0], 2, "header version");
            assert_eq!(
                decode_response(&v2),
                Ok(Response::Overloaded {
                    retry_after_ms: want_hint
                })
            );
            let v3 = encode_response_for(3, &response);
            assert_eq!(v3[0], 3);
            assert_eq!(decode_response(&v3), Ok(response));
        }
    }

    #[test]
    fn error_range_variants_are_marked() {
        assert!(Response::DeadlineExceeded.is_error());
        assert!(Response::GoingAway { retry_after_ms: 1 }.is_error());
        assert!(Response::Overloaded { retry_after_ms: 1 }.is_error());
        assert!(Response::Error {
            code: ErrorCode::Internal,
            message: String::new()
        }
        .is_error());
        assert!(!Response::Estimate(1.0).is_error());
        assert!(!Response::Stats(String::new()).is_error());
    }

    #[test]
    fn every_response_roundtrips() {
        let responses = [
            Response::Pong {
                version: PROTOCOL_VERSION,
                s: 3,
                records: 12_345,
                degraded: false,
            },
            Response::Pong {
                version: PROTOCOL_VERSION,
                s: 3,
                records: 0,
                degraded: true,
            },
            Response::UploadOk {
                accepted: 10,
                duplicates: 2,
            },
            Response::Estimate(123.456),
            Response::Estimate(f64::NAN),
            Response::Error {
                code: ErrorCode::MissingRecord,
                message: "loc 3 period 9".into(),
            },
            Response::Overloaded {
                retry_after_ms: 250,
            },
            Response::Stats("{\"counters\":{}}".into()),
        ];
        for response in responses {
            let payload = encode_response(&response);
            let back = decode_response(&payload).expect("decode");
            match (&response, &back) {
                // NaN != NaN; compare bit patterns instead.
                (Response::Estimate(a), Response::Estimate(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert_eq!(&back, &response),
            }
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let mut payload = encode_request(&Request::Ping);
        payload[0] = 99;
        assert_eq!(
            decode_request(&payload),
            Err(ProtoError::VersionMismatch {
                got: 99,
                want: PROTOCOL_VERSION
            })
        );
    }

    #[test]
    fn truncation_detected_everywhere() {
        let payload = encode_request(&Request::QueryPoint {
            location: LocationId::new(1),
            periods: periods(4),
        });
        for cut in 0..payload.len() {
            assert!(decode_request(&payload[..cut]).is_err(), "cut {cut}");
        }
        let payload = encode_response(&Response::Error {
            code: ErrorCode::Internal,
            message: "details".into(),
        });
        for cut in 0..payload.len() {
            assert!(decode_response(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = encode_request(&Request::Ping);
        payload.push(0);
        assert_eq!(decode_request(&payload), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tags_and_codes_rejected() {
        assert_eq!(
            decode_request(&[PROTOCOL_VERSION, 42, 0]),
            Err(ProtoError::UnknownTag(42))
        );
        assert_eq!(
            decode_response(&[PROTOCOL_VERSION, 42, 0]),
            Err(ProtoError::UnknownTag(42))
        );
        let mut payload = encode_response(&Response::Error {
            code: ErrorCode::Internal,
            message: String::new(),
        });
        payload[3] = 200;
        assert_eq!(
            decode_response(&payload),
            Err(ProtoError::UnknownErrorCode(200))
        );
    }

    #[test]
    fn oversized_counts_rejected() {
        // Batch count beyond the ceiling.
        let mut payload = header_for(PROTOCOL_VERSION, TAG_UPLOAD_BATCH, None, None);
        payload.extend_from_slice(&(MAX_BATCH_RECORDS as u32 + 1).to_le_bytes());
        assert_eq!(
            decode_request(&payload),
            Err(ProtoError::BadLength(MAX_BATCH_RECORDS + 1))
        );
        // Period count beyond the ceiling.
        let mut payload = header_for(PROTOCOL_VERSION, TAG_QUERY_POINT, None, None);
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&(MAX_QUERY_PERIODS as u16 + 1).to_le_bytes());
        assert_eq!(
            decode_request(&payload),
            Err(ProtoError::BadLength(MAX_QUERY_PERIODS + 1))
        );
    }

    #[test]
    fn malformed_embedded_record_reported() {
        let mut payload = header_for(PROTOCOL_VERSION, TAG_UPLOAD, None, None);
        payload.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            decode_request(&payload),
            Err(ProtoError::BadRecord(_))
        ));
    }

    #[test]
    fn upload_payload_matches_archive_codec() {
        // The embedded record bytes are exactly the ptm-store payload, so
        // what the daemon archives is byte-identical to what was sent.
        let record = sample_record(5, 3);
        let payload = encode_request(&Request::Upload(record.clone()));
        assert_eq!(&payload[3..], encode_record(&record).as_slice());
    }
}
