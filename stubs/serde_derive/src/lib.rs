//! Vendored hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the serde stub. Parses the item's token stream directly (no
//! syn/quote) and emits impls of the stub's `to_content` / `from_content`
//! traits. Supported shapes — the ones this workspace actually derives:
//! named structs (with `#[serde(skip)]` fields and `Option` defaults),
//! tuple structs (newtypes serialize transparently), unit-variant and
//! newtype-variant enums, and the `#[serde(try_from = "…", into = "…")]`
//! container attribute. Anything else panics with a clear message at
//! compile time rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model ------------------------------------------------------------

struct Field {
    name: String,
    ty: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Newtype,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields (1 = transparent newtype).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
    try_from: Option<String>,
    into: Option<String>,
}

// ---- parsing ---------------------------------------------------------------

/// Extracts `skip` / `try_from` / `into` settings from one `#[serde(...)]`
/// attribute body, if the bracket group is a serde attribute at all.
fn parse_serde_attr(group: &proc_macro::Group, out: &mut SerdeAttrs) {
    let mut trees = group.stream().into_iter();
    match trees.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = trees.next() else {
        return;
    };
    let mut args = args.stream().into_iter().peekable();
    while let Some(tree) = args.next() {
        let TokenTree::Ident(key) = tree else {
            continue;
        };
        let key = key.to_string();
        let value = match args.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                args.next();
                match args.next() {
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        Some(s.trim_matches('"').to_string())
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("skip", _) => out.skip = true,
            ("try_from", Some(v)) => out.try_from = Some(v),
            ("into", Some(v)) => out.into = Some(v),
            (other, _) => panic!("serde stub derive: unsupported serde attribute `{other}`"),
        }
    }
}

#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    try_from: Option<String>,
    into: Option<String>,
}

/// Parses the fields of a `struct { ... }` body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut trees = stream.into_iter().peekable();
    loop {
        let mut attrs = SerdeAttrs::default();
        // Leading attributes (docs, serde) and visibility.
        loop {
            match trees.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    trees.next();
                    if let Some(TokenTree::Group(g)) = trees.next() {
                        parse_serde_attr(&g, &mut attrs);
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    trees.next();
                    if let Some(TokenTree::Group(g)) = trees.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            trees.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(name)) = trees.next() else {
            break;
        };
        match trees.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field name, got {other:?}"),
        }
        // The type: consume until a comma at angle-bracket depth zero.
        let mut ty = String::new();
        let mut depth = 0i32;
        while let Some(tree) = trees.peek() {
            if let TokenTree::Punct(p) = tree {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        trees.next();
                        break;
                    }
                    _ => {}
                }
            }
            ty.push_str(&trees.next().expect("peeked").to_string());
        }
        fields.push(Field {
            name: name.to_string(),
            ty,
            skip: attrs.skip,
        });
    }
    fields
}

/// Parses the variants of an `enum { ... }` body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut trees = stream.into_iter().peekable();
    while let Some(tree) = trees.next() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                trees.next();
            }
            TokenTree::Ident(name) => {
                let kind = match trees.peek() {
                    Some(TokenTree::Group(g)) => {
                        let delim = g.delimiter();
                        let inner_has_comma = top_level_comma_count(&g.stream()) > 0;
                        trees.next();
                        match delim {
                            Delimiter::Parenthesis if !inner_has_comma => VariantKind::Newtype,
                            Delimiter::Parenthesis => panic!(
                                "serde stub derive: multi-field tuple variants are unsupported"
                            ),
                            _ => panic!(
                                "serde stub derive: struct-style enum variants are unsupported"
                            ),
                        }
                    }
                    _ => VariantKind::Unit,
                };
                // Trailing separator, if present.
                if let Some(TokenTree::Punct(p)) = trees.peek() {
                    if p.as_char() == ',' {
                        trees.next();
                    }
                }
                variants.push(Variant {
                    name: name.to_string(),
                    kind,
                });
            }
            other => panic!("serde stub derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// Commas at angle-depth zero — trailing commas don't count as separators
/// unless content follows, but for field counting a trailing comma is
/// harmless because we only compare against zero / use count+1 on content.
fn top_level_comma_count(stream: &TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing = false;
    for tree in stream.clone() {
        trailing = false;
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing = true;
                }
                _ => {}
            }
        }
    }
    commas - usize::from(trailing)
}

fn parse_item(input: TokenStream) -> Item {
    let mut attrs = SerdeAttrs::default();
    let mut trees = input.into_iter().peekable();
    loop {
        match trees.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                trees.next();
                if let Some(TokenTree::Group(g)) = trees.next() {
                    parse_serde_attr(&g, &mut attrs);
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                trees.next();
                if let Some(TokenTree::Group(g)) = trees.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        trees.next();
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match trees.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match trees.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = trees.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are unsupported (deriving {name})");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match trees.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                if stream.is_empty() {
                    panic!("serde stub derive: empty tuple structs are unsupported");
                }
                Shape::TupleStruct(top_level_comma_count(&stream) + 1)
            }
            other => panic!("serde stub derive: unsupported struct body: {other:?}"),
        },
        "enum" => match trees.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };
    Item {
        name,
        shape,
        try_from: attrs.try_from,
        into: attrs.into,
    }
}

// ---- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.into {
        format!(
            "let proxy: {proxy} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&proxy)"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct(fields) => {
                let mut s = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> \
                     = ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    s.push_str(&format!(
                        "fields.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_content(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Content::Map(fields)");
                s
            }
            Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
            Shape::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
            }
            Shape::Enum(variants) => {
                let mut s = String::from("match self {\n");
                for v in variants {
                    match v.kind {
                        VariantKind::Unit => s.push_str(&format!(
                            "{name}::{0} => ::serde::Content::Str(\
                             ::std::string::String::from(\"{0}\")),\n",
                            v.name
                        )),
                        VariantKind::Newtype => s.push_str(&format!(
                            "{name}::{0}(inner) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{0}\"), \
                             ::serde::Serialize::to_content(inner))]),\n",
                            v.name
                        )),
                    }
                }
                s.push('}');
                s
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.try_from {
        format!(
            "let proxy: {proxy} = ::serde::Deserialize::from_content(c)?;\n\
             ::core::convert::TryFrom::try_from(proxy)\n\
             .map_err(|e| ::serde::DeError(::std::format!(\"{name}: {{e}}\")))"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct(fields) => {
                let mut s = format!(
                    "let map = match c {{\n\
                     ::serde::Content::Map(m) => m,\n\
                     other => return ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"map for {name}\", other)),\n}};\n\
                     ::std::result::Result::Ok({name} {{\n"
                );
                for f in fields {
                    if f.skip {
                        s.push_str(&format!(
                            "{}: ::core::default::Default::default(),\n",
                            f.name
                        ));
                        continue;
                    }
                    // Real serde treats a missing `Option` field as `None`.
                    let missing = if f.ty.starts_with("Option<")
                        || f.ty.starts_with("::core::option::Option<")
                        || f.ty.starts_with("::std::option::Option<")
                        || f.ty.starts_with("core::option::Option<")
                        || f.ty.starts_with("std::option::Option<")
                    {
                        "::core::option::Option::None".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::DeError(\
                             ::std::string::String::from(\
                             \"missing field `{0}` in {name}\")))",
                            f.name
                        )
                    };
                    s.push_str(&format!(
                        "{0}: match map.iter().find(|kv| kv.0 == \"{0}\") {{\n\
                         ::std::option::Option::Some(kv) => \
                         ::serde::Deserialize::from_content(&kv.1)?,\n\
                         ::std::option::Option::None => {missing},\n}},\n",
                        f.name
                    ));
                }
                s.push_str("})");
                s
            }
            Shape::TupleStruct(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"
            ),
            Shape::TupleStruct(n) => {
                let mut s = format!(
                    "let items = match c {{\n\
                     ::serde::Content::Seq(items) => items,\n\
                     other => return ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"sequence for {name}\", other)),\n}};\n\
                     if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError(\
                     ::std::format!(\"expected {n} elements for {name}, found {{}}\", \
                     items.len())));\n}}\n\
                     ::std::result::Result::Ok({name}(\n"
                );
                for i in 0..*n {
                    s.push_str(&format!(
                        "::serde::Deserialize::from_content(&items[{i}])?,\n"
                    ));
                }
                s.push_str("))");
                s
            }
            Shape::Enum(variants) => {
                let units: Vec<&Variant> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .collect();
                let newtypes: Vec<&Variant> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Newtype))
                    .collect();
                let mut s = String::from("match c {\n");
                if !units.is_empty() {
                    s.push_str("::serde::Content::Str(s) => match s.as_str() {\n");
                    for v in &units {
                        s.push_str(&format!(
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                            v.name
                        ));
                    }
                    s.push_str(&format!(
                        "other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n"
                    ));
                }
                if !newtypes.is_empty() {
                    s.push_str(
                        "::serde::Content::Map(m) if m.len() == 1 => match m[0].0.as_str() {\n",
                    );
                    for v in &newtypes {
                        s.push_str(&format!(
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}(\
                             ::serde::Deserialize::from_content(&m[0].1)?)),\n",
                            v.name
                        ));
                    }
                    s.push_str(&format!(
                        "other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n"
                    ));
                }
                s.push_str(&format!(
                    "other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"variant of {name}\", other)),\n}}"
                ));
                s
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

// ---- entry points ----------------------------------------------------------

/// Derives the serde stub's `Serialize` (a `to_content` impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stub derive: generated Serialize impl parses")
}

/// Derives the serde stub's `Deserialize` (a `from_content` impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stub derive: generated Deserialize impl parses")
}
