//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access, so the handful of external
//! dependencies are vendored as small std-only crates under `stubs/`. This
//! one covers exactly the surface the workspace uses: `RngCore`,
//! `SeedableRng` (with the rand_core 0.6 `seed_from_u64` expansion),
//! `Rng::{gen, gen_range, gen_bool, fill}`, `rngs::StdRng`, and
//! `rngs::mock::StepRng`. Algorithms follow the upstream implementations
//! closely (PCG-based seed expansion, Lemire-style range sampling, 53-bit
//! float conversion) so seeded streams are high quality and stable.

#![forbid(unsafe_code)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the same PCG-based routine
    /// rand_core 0.6 uses, then seeds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The `Standard` distribution backing `Rng::gen`.

    use crate::RngCore;

    /// Uniform distribution over a type's full value range (floats: `[0, 1)`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Types samplable from a distribution.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! impl_std_int32 {
        ($($ty:ty),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.next_u32() as $ty
                }
            }
        )*};
    }
    impl_std_int32!(u8, u16, u32, i8, i16, i32);

    macro_rules! impl_std_int64 {
        ($($ty:ty),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    impl_std_int64!(u64, i64, usize, isize, u128, i128);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() >> 31 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 significant bits, matching rand 0.8's Standard for f64.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl<T, const N: usize> Distribution<[T; N]> for Standard
    where
        Standard: Distribution<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
            core::array::from_fn(|_| self.sample(rng))
        }
    }

    pub mod uniform {
        //! Range sampling for `Rng::gen_range`.

        use crate::RngCore;

        /// A range form `gen_range` accepts for element type `T`.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Uniform sampling of `T` over half-open and inclusive ranges.
        pub trait SampleUniform: Sized {
            /// Draws from `[low, high)`; panics if the range is empty.
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Draws from `[low, high]`; panics if `low > high`.
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                T::sample_inclusive(low, high, rng)
            }
        }

        // Lemire-style widening-multiply rejection sampling, as in rand 0.8's
        // UniformInt::sample_single: unbiased and one multiply per accepted
        // draw. The helpers live on a private trait because primitives can't
        // take inherent impls outside core.
        trait UniformCore: Sized {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
            fn sample_span<R: RngCore + ?Sized>(low: Self, span: Self, rng: &mut R) -> Self;
        }

        macro_rules! impl_uniform_uint {
            ($ty:ty, $wide:ty, $bits:expr) => {
                impl UniformCore for $ty {
                    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                        if $bits <= 32 {
                            rng.next_u32() as $ty
                        } else {
                            rng.next_u64() as $ty
                        }
                    }
                    fn sample_span<R: RngCore + ?Sized>(low: $ty, span: $ty, rng: &mut R) -> $ty {
                        let zone = (span << span.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v = <$ty as UniformCore>::draw(rng);
                            let m = (v as $wide).wrapping_mul(span as $wide);
                            let lo = m as $ty;
                            if lo <= zone {
                                return low.wrapping_add((m >> $bits) as $ty);
                            }
                        }
                    }
                }
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low < high, "gen_range: empty range");
                        <$ty as UniformCore>::sample_span(low, high - low, rng)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        match (high - low).checked_add(1) {
                            Some(span) => <$ty as UniformCore>::sample_span(low, span, rng),
                            // Full domain: every raw draw is acceptable.
                            None => <$ty as UniformCore>::draw(rng),
                        }
                    }
                }
            };
        }
        impl_uniform_uint!(u32, u64, 32);
        impl_uniform_uint!(u64, u128, 64);
        impl_uniform_uint!(usize, u128, 64);

        macro_rules! impl_uniform_small_uint {
            ($($ty:ty),*) => {$(
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        u32::sample_half_open(low as u32, high as u32, rng) as $ty
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        u32::sample_inclusive(low as u32, high as u32, rng) as $ty
                    }
                }
            )*};
        }
        impl_uniform_small_uint!(u8, u16);

        macro_rules! impl_uniform_int {
            ($ty:ty, $uty:ty) => {
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low < high, "gen_range: empty range");
                        let span = high.wrapping_sub(low) as $uty;
                        let off = <$uty>::sample_half_open(0, span, rng);
                        low.wrapping_add(off as $ty)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        match (high.wrapping_sub(low) as $uty).checked_add(1) {
                            Some(span) => {
                                let off = <$uty>::sample_half_open(0, span, rng);
                                low.wrapping_add(off as $ty)
                            }
                            None => <$uty>::sample_inclusive(0, <$uty>::MAX, rng) as $ty,
                        }
                    }
                }
            };
        }
        impl_uniform_int!(i8, u8);
        impl_uniform_int!(i16, u16);
        impl_uniform_int!(i32, u32);
        impl_uniform_int!(i64, u64);
        impl_uniform_int!(isize, usize);

        macro_rules! impl_uniform_float {
            ($($ty:ty),*) => {$(
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low < high, "gen_range: empty range");
                        let unit: $ty = crate::distributions::Distribution::sample(
                            &crate::distributions::Standard, rng);
                        low + (high - low) * unit
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        let unit: $ty = crate::distributions::Distribution::sample(
                            &crate::distributions::Standard, rng);
                        low + (high - low) * unit
                    }
                }
            )*};
        }
        impl_uniform_float!(f32, f64);
    }
}

/// Types fillable with random data via `Rng::fill`.
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any `Standard`-samplable type.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: distributions::uniform::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        if p >= 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }

    /// Fills a byte buffer with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The workspace's default seeded generator: xoshiro256++, seeded via
    /// [`SeedableRng::seed_from_u64`]'s PCG expansion. Fast, passes BigCrush,
    /// and fully deterministic from its seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it with
            // splitmix64 outputs as the xoshiro authors recommend.
            if s == [0; 4] {
                let mut x = 0x9E37_79B9_7F4A_7C15u64;
                for w in &mut s {
                    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = x;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    *w = z ^ (z >> 31);
                }
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            crate::util::fill_bytes_via_u64(self, dest);
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Returns an arithmetic sequence: `initial`, `initial + increment`, …
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the sequence starting at `initial`.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                crate::util::fill_bytes_via_u64(self, dest);
            }
        }
    }
}

pub(crate) mod util {
    use crate::RngCore;

    /// Fills a byte slice from successive `next_u64` words, little-endian,
    /// matching rand_core's `fill_bytes_via_next`.
    pub fn fill_bytes_via_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = rng.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Frequently used items.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: u64 = rng.gen_range(5..=5);
            assert_eq!(x, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_roughly_uniformly() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut r = rngs::mock::StepRng::new(1, 1);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }

    #[test]
    fn fill_fills() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut buf = [0u8; 6];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 6]);
    }
}
