//! Vendored stand-in for the `criterion` crate: the same macro/group/bencher
//! API shape, backed by a small calibrated timing loop instead of the full
//! statistical machinery. Each benchmark prints one stable line:
//!
//! ```text
//! bench: <group>/<name> median_ns_per_iter <value>
//! ```
//!
//! which `scripts/bench.sh` parses into `BENCH_*.json`. Calibration doubles
//! the iteration count until a sample takes ≥ ~2 ms, then the median of 9
//! timed samples is reported. Absolute numbers are comparable across runs on
//! the same machine, which is all the repo's trend tracking needs.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted and ignored: every batch is
/// rebuilt per sample either way).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs, many per batch.
    SmallInput,
    /// Large inputs, fewer per batch.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Declares what one iteration processes, for throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

const SAMPLES: usize = 9;
const TARGET_SAMPLE_NS: u128 = 2_000_000;
const MAX_CALIBRATION_ITERS: u64 = 1 << 22;

/// Times one closure invocation over `iters` iterations, in ns.
fn time<F: FnMut()>(iters: u64, mut f: F) -> u128 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// The per-benchmark measurement handle.
pub struct Bencher {
    median_ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine`, timing batches of calibrated size.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut iters = 1u64;
        loop {
            let ns = time(iters, || {
                black_box(routine());
            });
            if ns >= TARGET_SAMPLE_NS || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            iters *= 2;
        }
        let samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let ns = time(iters, || {
                    black_box(routine());
                });
                ns as f64 / iters as f64
            })
            .collect();
        self.median_ns_per_iter = median(samples);
    }

    /// Measures `routine` over inputs built by `setup`; setup time is
    /// excluded by building each batch before the clock starts.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut iters = 1u64;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = start.elapsed().as_nanos();
            if ns >= TARGET_SAMPLE_NS || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            iters *= 2;
        }
        let samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        self.median_ns_per_iter = median(samples);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, filter: Option<&str>, mut f: F) {
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let mut b = Bencher {
        median_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    println!("bench: {id} median_ns_per_iter {:.1}", b.median_ns_per_iter);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares per-iteration throughput (accepted, not printed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted; the stub's count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        run_one(&id, self.criterion.filter.as_deref(), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The harness entry point, holding the CLI filter.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` appends `--bench`; any non-flag argument is a
        // substring filter, as with real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.filter.as_deref(), f);
        self
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            median_ns_per_iter: f64::NAN,
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.median_ns_per_iter.is_finite());
        assert!(b.median_ns_per_iter >= 0.0);
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut b = Bencher {
            median_ns_per_iter: f64::NAN,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.median_ns_per_iter.is_finite());
    }
}
