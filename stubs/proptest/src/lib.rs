//! Vendored stand-in for the `proptest` crate: the `proptest!` macro,
//! `Strategy` with `prop_map`, `any::<T>()`, range and collection
//! strategies, and the `prop_assert*`/`prop_assume!` macros — enough for
//! every property test in this workspace. Cases are generated from a
//! deterministic per-test seed (FNV-1a of the test name), so failures
//! reproduce exactly; there is no shrinking, the failing inputs are printed
//! instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case generation and failure plumbing used by the macros.

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; another case is drawn.
        Reject(String),
    }

    /// Deterministic generator driving strategy sampling: xoshiro256++
    /// seeded from a stable hash of the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from the test name (FNV-1a, stable across runs).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut s = [0u64; 4];
            let mut x = h;
            for w in &mut s {
                // splitmix64 expansion of the hash.
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            Self { s }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)` (`bound > 0`), via rejection.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "proptest stub: empty range");
            let zone = (bound << bound.leading_zeros()).wrapping_sub(1);
            loop {
                let v = self.next_u64();
                let m = (v as u128).wrapping_mul(bound as u128);
                if (m as u64) <= zone {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// Cases drawn per property (smaller than upstream's 256 to keep the
    /// suite fast; the workspace's properties are deterministic anyway).
    pub const CASES: u32 = 64;

    /// Rejection budget before the test errors out.
    pub const MAX_REJECTS: u32 = 4096;
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "proptest stub: empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "proptest stub: empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + rng.below(span + 1) as $ty
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "proptest stub: empty range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite full-range-ish values: a 53-bit unit scaled by a
            // random power of two keeps the domain broad but finite.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let exp = (rng.next_u64() % 61) as i32 - 30;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * unit * (2.0f64).powi(exp)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Sized collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by the collection strategies.
    pub trait SampleLen {
        /// Draws a target length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
        /// The minimum admissible length.
        fn min_len(&self) -> usize;
    }

    impl SampleLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
        fn min_len(&self) -> usize {
            *self
        }
    }

    impl SampleLen for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "proptest stub: empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
        fn min_len(&self) -> usize {
            self.start
        }
    }

    impl SampleLen for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "proptest stub: empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
        fn min_len(&self) -> usize {
            *self.start()
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `L`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SampleLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec<T>` strategy with element strategy and length spec.
    pub fn vec<S: Strategy, L: SampleLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeSet<T>` with sizes drawn from `L`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SampleLen> Strategy for BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.len.sample_len(rng);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates shrink the set, so over-draw within a budget; a
            // domain smaller than the minimum size would loop forever
            // without the cap.
            let budget = target.saturating_mul(16) + 64;
            for _ in 0..budget {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            assert!(
                set.len() >= self.len.min_len(),
                "proptest stub: element domain too small for requested set size"
            );
            set
        }
    }

    /// `BTreeSet<T>` strategy with element strategy and size spec.
    pub fn btree_set<S: Strategy, L: SampleLen>(element: S, len: L) -> BTreeSetStrategy<S, L> {
        BTreeSetStrategy { element, len }
    }
}

pub mod sample {
    //! Index sampling, proptest's way to pick positions in runtime-sized
    //! collections.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An abstract index, concretized against a length via [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`; panics on `len == 0` like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::sample::Index;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `name in strategy` argument is sampled per
/// case, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < $crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < $crate::test_runner::MAX_REJECTS,
                                "proptest stub: too many rejected cases in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!("property {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case unless `cond` holds; another case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..8, y in 0usize..64) {
            prop_assert!((3..8).contains(&x));
            prop_assert!(y < 64);
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 18);
        }

        #[test]
        fn assume_rejects_and_resamples(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 2usize..5),
            s in crate::collection::btree_set(0u32..100, 1usize..10),
            idx in any::<Index>(),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 10);
            let i = idx.index(v.len());
            prop_assert!(i < v.len());
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
