//! Vendored stand-in for `serde_json`: prints and parses JSON against the
//! serde stub's [`serde::Content`] model. Covers the workspace's usage —
//! `to_string`, `to_string_pretty`, `to_vec`, `from_str`, `from_slice` —
//! with strict parsing (complete input, no trailing data) and
//! shortest-roundtrip float formatting via Rust's `Display`.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::from)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---- writer ----------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                let s = v.to_string();
                out.push_str(&s);
                // serde_json always distinguishes floats from integers.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => write_block(out, '[', ']', items.len(), indent, level, |out, i| {
            write_content(out, &items[i], indent, level + 1)
        }),
        Content::Map(entries) => {
            write_block(out, '{', '}', entries.len(), indent, level, |out, i| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, &entries[i].1, indent, level + 1)
            })
        }
    }
}

fn write_block(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than paired:
                            // the workspace never emits them.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".into()))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn vectors_roundtrip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
    }

    #[test]
    fn strict_about_trailing_garbage() {
        assert!(from_str::<u32>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
    }

    #[test]
    fn pretty_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
