//! Vendored stand-in for the `rand_chacha` crate (0.3 API subset).
//!
//! Implements the real ChaCha stream cipher (djb variant: 64-bit block
//! counter, 64-bit stream id) with 8 and 12 rounds, exposed through the
//! `rand` stub's `RngCore`/`SeedableRng` traits. The keystream is the
//! genuine ChaCha keystream, so statistical quality matches the upstream
//! crate; the workspace's estimator-accuracy tests depend on that.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut core = Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        };
        core.refill();
        core
    }

    fn refill(&mut self) {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial) {
            *w = w.wrapping_add(init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn word(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::from_seed_bytes(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.word()
            }
            fn next_u64(&mut self) -> u64 {
                let lo = self.core.word() as u64;
                let hi = self.core.word() as u64;
                lo | (hi << 32)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                let mut chunks = dest.chunks_exact_mut(4);
                for chunk in &mut chunks {
                    chunk.copy_from_slice(&self.core.word().to_le_bytes());
                }
                let rem = chunks.into_remainder();
                if !rem.is_empty() {
                    let word = self.core.word().to_le_bytes();
                    rem.copy_from_slice(&word[..rem.len()]);
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the workspace's fast seeded generator."
);
chacha_rng!(
    ChaCha12Rng,
    12,
    "ChaCha with 12 rounds: the workspace's default-strength generator."
);
chacha_rng!(ChaCha20Rng, 20, "ChaCha with the full 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha20_keystream_matches_rfc_structure() {
        // With the all-zero key the first block must differ from the second
        // (counter advances) and rounds must change the constants.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        assert_ne!(first[0], 0x6170_7865);
    }

    #[test]
    fn rounds_differentiate_streams() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha12Rng::from_seed([7u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_consistent_with_words() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }
}
