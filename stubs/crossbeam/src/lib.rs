//! Vendored stand-in for the `crossbeam` crate, covering only
//! `crossbeam::thread::scope`, which the workspace's trial runner uses.
//! Implemented over `std::thread::scope` (stable since 1.63); a child
//! panic surfaces as `Err` from `scope`, matching crossbeam's contract.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| …) -> Result` signature.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to the closure and to each spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the scope
        /// so it can spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. A panicking child (or closure) yields `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_workers() {
        let hits = AtomicUsize::new(0);
        let out = crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            7
        })
        .expect("no panics");
        assert_eq!(out, 7);
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
