//! Vendored stand-in for the `serde` crate.
//!
//! Rather than the full serializer/deserializer visitor machinery, this stub
//! round-trips every value through a small self-describing [`Content`] tree;
//! `serde_json` (also vendored) prints and parses that tree. The derive
//! macros from the vendored `serde_derive` generate `Serialize` /
//! `Deserialize` impls against these traits, covering the shapes the
//! workspace uses: named structs, transparent newtypes, unit enums, and the
//! `#[serde(try_from/into)]` and `#[serde(skip)]` attributes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0` when produced by the parser).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure: a message naming what was expected.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an "expected X, found Y" error.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type convertible into the [`Content`] model.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// A type reconstructible from the [`Content`] model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let raw = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let raw: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range for i64")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $ty),
                    Content::U64(v) => Ok(*v as $ty),
                    Content::I64(v) => Ok(*v as $ty),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

// `Content` round-trips through itself, so callers can parse JSON of an
// unknown shape (`serde_json::from_str::<Content>`) and walk the tree.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let items = match c {
            Content::Seq(items) => items,
            other => return Err(DeError::expected("sequence", other)),
        };
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_content).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<K: Serialize + std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let items = match c {
                    Content::Seq(items) => items,
                    other => return Err(DeError::expected("sequence", other)),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of length {expected}, found {}", items.len())));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-5i64).to_content()).unwrap(), -5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()).unwrap(), v);
        let a = [7u8; 6];
        assert_eq!(<[u8; 6]>::from_content(&a.to_content()).unwrap(), a);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }
}
