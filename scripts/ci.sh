#!/usr/bin/env bash
# The full local gate: formatting, lints-as-errors, build, tests.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Workspace invariants beyond what rustc/clippy can see: no-panic server
# crates, poison recovery on shared locks, metric and fault-site names in
# sync with their docs, protocol tags in range, fixed-seed determinism.
# Exit 1 on any finding; the JSON report is archived for trend tracking.
# See docs/ANALYSIS.md.
echo "==> ptm-analyze"
mkdir -p out
cargo run -q -p ptm-analyze -- check --json-out out/analysis.json

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

# The rpc loopback suite opens real sockets and spawns daemon threads; a
# hang here should fail CI, not wedge it. `timeout` sends SIGTERM after the
# bound (exit 124), which set -e turns into a failure.
echo "==> rpc loopback integration tests (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test rpc_loopback

# Concurrency stress on the sharded store: parallel uploaders + queriers
# must answer bit-for-bit like a sequential run, and the query cache must
# invalidate per location. Same bounding rationale as above.
echo "==> shard stress tests (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test shard_stress

# Seeded chaos: deterministic fault plans (disk-full, fsync failure,
# connection resets, truncated frames, overload bursts) against a real
# daemon. The plans are fixed-seed, so this is a regression gate, not a
# fuzzer; the whole suite is budgeted to finish in seconds.
echo "==> chaos suite (bounded, fixed seeds)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test chaos

echo "ci: all green"
