#!/usr/bin/env bash
# The full local gate: formatting, lints-as-errors, build, tests.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "ci: all green"
