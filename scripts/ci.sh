#!/usr/bin/env bash
# The full local gate: formatting, lints-as-errors, build, tests.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

# The rpc loopback suite opens real sockets and spawns daemon threads; a
# hang here should fail CI, not wedge it. `timeout` sends SIGTERM after the
# bound (exit 124), which set -e turns into a failure.
echo "==> rpc loopback integration tests (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test rpc_loopback

echo "ci: all green"
