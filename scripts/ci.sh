#!/usr/bin/env bash
# The full local gate: formatting, lints-as-errors, build, tests.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Workspace invariants beyond what rustc/clippy can see: no-panic server
# crates, poison recovery on shared locks, metric and fault-site names in
# sync with their docs, protocol tags in range, fixed-seed determinism,
# lock-order cycles, reactor-blocking reachability, gauge balance.
# Exit 1 on any finding; the JSON report is archived for trend tracking,
# and the server crates' lock-order graph (who holds what while acquiring
# what) is archived even when clean so a new held-across edge shows up in
# review. See docs/ANALYSIS.md.
echo "==> ptm-analyze"
mkdir -p out
cargo run -q -p ptm-analyze -- check --json-out out/analysis.json \
    --lockgraph-out out/lockgraph.json

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

# The rpc loopback suite opens real sockets and spawns daemon threads; a
# hang here should fail CI, not wedge it. `timeout` sends SIGTERM after the
# bound (exit 124), which set -e turns into a failure.
echo "==> rpc loopback integration tests (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test rpc_loopback

# Concurrency stress on the sharded store: parallel uploaders + queriers
# must answer bit-for-bit like a sequential run, and the query cache must
# invalidate per location. Same bounding rationale as above.
echo "==> shard stress tests (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test shard_stress

# Seeded chaos: deterministic fault plans (disk-full, fsync failure,
# connection resets, truncated frames, overload bursts) against a real
# daemon. The plans are fixed-seed, so this is a regression gate, not a
# fuzzer; the whole suite is budgeted to finish in seconds.
echo "==> chaos suite (bounded, fixed seeds)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test chaos

# Segment-lifecycle kill storms, called out separately so a storage-engine
# regression fails with its own banner: kills landing inside rotation and
# compaction must lose no acked record and answer bit-exactly after reopen.
echo "==> storage-engine kill storms (bounded, fixed seeds)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test chaos kill_during

# Connection-scale storms against the reactor: hundreds of slow-loris
# dribblers must not starve healthy clients, a thousand concurrent
# connections must all be answered, and the pipelined upload path must be
# bit-for-bit equivalent to the batch path.
echo "==> reactor storms (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test reactor_storm

# Overload storms: a saturated worker pool across five fixed seeds must
# drop deadline-doomed work without executing it, keep Stats answerable
# at full saturation, drain with zero acked-record loss, and settle every
# queue-depth and in-flight gauge back to zero.
echo "==> overload storms (bounded, fixed seeds)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test overload_storm

# Traced loopback smoke: a real daemon with tracing on, one upload and one
# query against it, then the span JSONL checked against the schema
# documented in docs/OBSERVABILITY.md. The sample is archived as a CI
# artifact (out/trace-sample.jsonl) so a schema change shows up in review.
echo "==> traced loopback smoke"
ptm="target/release/ptm"
rm -f out/trace-sample.jsonl
rm -rf out/trace-smoke.ptma
"$ptm" serve --archive out/trace-smoke.ptma --addr 127.0.0.1:17171 \
    --duration-secs 4 --trace out/trace-sample.jsonl --quiet &
serve_pid=$!
# The client retries refused connections, so no startup sleep is needed.
"$ptm" upload --addr 127.0.0.1:17171 --location 5 --periods 3 \
    --vehicles 80 --persistent 20 --quiet
"$ptm" query --addr 127.0.0.1:17171 --kind point --location 5 --periods 3 --quiet
wait "$serve_pid"
"$ptm" trace-validate --file out/trace-sample.jsonl

# Cold-start smoke for storage engine v2: populate an archive with enough
# uploads to rotate a few segments, kill the daemon, reopen with tracing on,
# and assert the startup went through the indexed path (a recorded
# `store.index.load` span) instead of a full replay.
echo "==> cold-start smoke (O(index) reopen)"
rm -f out/trace-coldstart.jsonl
rm -rf out/coldstart.ptma
"$ptm" serve --archive out/coldstart.ptma --addr 127.0.0.1:17172 \
    --rotate-bytes 1024 --duration-secs 4 --quiet &
serve_pid=$!
"$ptm" upload --addr 127.0.0.1:17172 --location 7 --periods 12 \
    --vehicles 400 --persistent 100 --quiet
wait "$serve_pid"
# The shutdown checkpoint seals the tail, so this reopen must go through
# sealed-index loads only — no record replay.
"$ptm" serve --archive out/coldstart.ptma --addr 127.0.0.1:17172 \
    --duration-secs 1 --trace out/trace-coldstart.jsonl --quiet
grep -q 'store.index.load' out/trace-coldstart.jsonl \
    || { echo "ci: cold start did not record a store.index.load span" >&2; exit 1; }
rm -rf out/trace-smoke.ptma out/coldstart.ptma

echo "ci: all green"
