#!/usr/bin/env bash
# The full local gate: formatting, lints-as-errors, build, tests.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The daemon recovers from poisoned locks instead of unwrapping them; keep
# panic-on-Err out of the server-side crates' non-test code so that
# property holds. The unwrap_used/expect_used lints live as crate-level
# `warn`s in each crate's lib.rs (scoped to not(test), so tests may still
# unwrap); -D warnings escalates them here. Passing -D clippy::unwrap_used
# on this command line instead would leak the lint into every path
# dependency.
echo "==> cargo clippy -p ptm-rpc -p ptm-store -p ptm-fault (no unwrap/expect in non-test code)"
cargo clippy -p ptm-rpc -p ptm-store -p ptm-fault -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

# The rpc loopback suite opens real sockets and spawns daemon threads; a
# hang here should fail CI, not wedge it. `timeout` sends SIGTERM after the
# bound (exit 124), which set -e turns into a failure.
echo "==> rpc loopback integration tests (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test rpc_loopback

# Concurrency stress on the sharded store: parallel uploaders + queriers
# must answer bit-for-bit like a sequential run, and the query cache must
# invalidate per location. Same bounding rationale as above.
echo "==> shard stress tests (bounded)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test shard_stress

# Seeded chaos: deterministic fault plans (disk-full, fsync failure,
# connection resets, truncated frames, overload bursts) against a real
# daemon. The plans are fixed-seed, so this is a regression gate, not a
# fuzzer; the whole suite is budgeted to finish in seconds.
echo "==> chaos suite (bounded, fixed seeds)"
timeout 300 cargo test --quiet -p ptm-integration-tests --test chaos

echo "ci: all green"
