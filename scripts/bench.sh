#!/usr/bin/env bash
# Micro-benchmark snapshot: runs the stub-criterion benches that this
# repo tracks release-over-release and distills their medians into two
# committed JSON files (BENCH_6.json and BENCH_7.json by default).
#
#   ./scripts/bench.sh [output.json] [storage-output.json]
#
# Tracked medians (ns per iteration), first file:
#   encoding/encode_10k_vehicles     vehicle encoding, 10k per iteration
#   bitmap/and_join_10_mixed_sizes   expand + AND join across 10 bitmaps
#   rpc/frame_roundtrip_4k_record    frame write + CRC-checked read back
#   trace/ingest_untraced            loopback upload, tracing disabled
#   trace/ingest_traced              loopback upload, full span tree on
#
# Second file (the storage-engine-v2 cold-start and read-path numbers):
#   store/v1_open_100k               v1 full replay of a 100k-record archive
#   store/v2_open_100k               v2 manifest+index open, same records
#   store/read_hit                   historical read served by the page cache
#   store/read_miss                  historical read walking index + disk
#
# The traced-vs-untraced pair is the disabled-path guarantee in numbers:
# ingest_untraced must sit within noise of the pre-tracing baseline. The
# v1-vs-v2 open pair is the O(index) startup guarantee: v2 must open the
# same archive several times faster than a full replay.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_6.json}"
store_out="${2:-BENCH_7.json}"
raw="$(mktemp)"
store_raw="$(mktemp)"
trap 'rm -f "$raw" "$store_raw"' EXIT

echo "==> cargo bench -p ptm-bench (tracked subset)"
cargo bench -p ptm-bench --bench micro -- encoding/encode_10k_vehicles | tee -a "$raw"
cargo bench -p ptm-bench --bench micro -- bitmap/and_join_10_mixed_sizes | tee -a "$raw"
cargo bench -p ptm-bench --bench micro -- rpc/frame_roundtrip_4k_record | tee -a "$raw"
cargo bench -p ptm-bench --bench obs_overhead -- trace/ingest | tee -a "$raw"

awk -v out="$out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("encoding/encode_10k_vehicles bitmap/and_join_10_mixed_sizes " \
              "rpc/frame_roundtrip_4k_record trace/ingest_untraced " \
              "trace/ingest_traced", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$raw"

echo "==> wrote $out"
cat "$out"

echo "==> cargo bench -p ptm-bench --bench storage"
cargo bench -p ptm-bench --bench storage | tee -a "$store_raw"

awk -v out="$store_out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("store/v1_open_100k store/v2_open_100k " \
              "store/read_hit store/read_miss", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$store_raw"

echo "==> wrote $store_out"
cat "$store_out"
