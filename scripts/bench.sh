#!/usr/bin/env bash
# Micro-benchmark snapshot: runs the stub-criterion benches that this
# repo tracks release-over-release and distills their medians into a
# committed JSON file (BENCH_6.json by default).
#
#   ./scripts/bench.sh [output.json]
#
# Tracked medians (ns per iteration):
#   encoding/encode_10k_vehicles     vehicle encoding, 10k per iteration
#   bitmap/and_join_10_mixed_sizes   expand + AND join across 10 bitmaps
#   rpc/frame_roundtrip_4k_record    frame write + CRC-checked read back
#   trace/ingest_untraced            loopback upload, tracing disabled
#   trace/ingest_traced              loopback upload, full span tree on
#
# The traced-vs-untraced pair is the disabled-path guarantee in numbers:
# ingest_untraced must sit within noise of the pre-tracing baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_6.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "==> cargo bench -p ptm-bench (tracked subset)"
cargo bench -p ptm-bench --bench micro -- encoding/encode_10k_vehicles | tee -a "$raw"
cargo bench -p ptm-bench --bench micro -- bitmap/and_join_10_mixed_sizes | tee -a "$raw"
cargo bench -p ptm-bench --bench micro -- rpc/frame_roundtrip_4k_record | tee -a "$raw"
cargo bench -p ptm-bench --bench obs_overhead -- trace/ingest | tee -a "$raw"

awk -v out="$out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("encoding/encode_10k_vehicles bitmap/and_join_10_mixed_sizes " \
              "rpc/frame_roundtrip_4k_record trace/ingest_untraced " \
              "trace/ingest_traced", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$raw"

echo "==> wrote $out"
cat "$out"
