#!/usr/bin/env bash
# Micro-benchmark snapshot: runs the stub-criterion benches that this
# repo tracks release-over-release and distills their medians into five
# committed JSON files (BENCH_6.json, BENCH_7.json, BENCH_8.json,
# BENCH_9.json, and BENCH_10.json by default).
#
#   ./scripts/bench.sh [output.json] [storage-output.json] [reactor-output.json] [deadline-output.json] [analyze-output.json]
#
# Tracked medians (ns per iteration), first file:
#   encoding/encode_10k_vehicles     vehicle encoding, 10k per iteration
#   bitmap/and_join_10_mixed_sizes   expand + AND join across 10 bitmaps
#   rpc/frame_roundtrip_4k_record    frame write + CRC-checked read back
#   trace/ingest_untraced            loopback upload, tracing disabled
#   trace/ingest_traced              loopback upload, full span tree on
#
# Second file (the storage-engine-v2 cold-start and read-path numbers):
#   store/v1_open_100k               v1 full replay of a 100k-record archive
#   store/v2_open_100k               v2 manifest+index open, same records
#   store/read_hit                   historical read served by the page cache
#   store/read_miss                  historical read walking index + disk
#
# Third file (the reactor wire-path numbers):
#   frame/decode_in_place            FrameDecoder: reusable buffer, borrowed payload
#   frame/decode_copy                read_frame baseline: fresh Vec per frame
#   reactor/pipelined_ingest         16-record pipelined wave, coalesced commit
#   reactor/accept_latency           connect + ping with 512 idle connections held
#   trace/ingest_untraced            single-upload round trip, tracing off (same
#   trace/ingest_traced               runs as the first file — no re-measurement)
#
# Fourth file (the deadline-stamping overhead pair):
#   deadline/encode_unstamped        encode a ~4 KiB upload request, no deadline
#   deadline/encode_stamped          same request with the FLAG_DEADLINE budget
#
# Fifth file (the analyzer's own cost, over this repository's source):
#   analyze/files_scanned            workspace file count (a count, not ns —
#                                     files/sec = count * 1e9 / median_ns)
#   analyze/workspace_load           walk + read + lex the whole workspace
#   analyze/full_check               every rule over a loaded workspace
#   analyze/lock_analysis            call-graph build + lock-order analysis
#
# The stamped-vs-unstamped encode pair is the deadline-propagation
# guarantee in numbers: stamping the remaining budget into every attempt
# must cost no more than the four bytes it adds to the header.
# The traced-vs-untraced pair is the disabled-path guarantee in numbers:
# ingest_untraced must sit within noise of the pre-tracing baseline. The
# v1-vs-v2 open pair is the O(index) startup guarantee: v2 must open the
# same archive several times faster than a full replay. The in-place-vs-
# copy decode pair is the zero-copy guarantee: decode_in_place must not
# lose to the allocating baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_6.json}"
store_out="${2:-BENCH_7.json}"
reactor_out="${3:-BENCH_8.json}"
deadline_out="${4:-BENCH_9.json}"
analyze_out="${5:-BENCH_10.json}"
raw="$(mktemp)"
store_raw="$(mktemp)"
reactor_raw="$(mktemp)"
analyze_raw="$(mktemp)"
trap 'rm -f "$raw" "$store_raw" "$reactor_raw" "$analyze_raw"' EXIT

echo "==> cargo bench -p ptm-bench (tracked subset)"
cargo bench -p ptm-bench --bench micro -- encoding/encode_10k_vehicles | tee -a "$raw"
cargo bench -p ptm-bench --bench micro -- bitmap/and_join_10_mixed_sizes | tee -a "$raw"
cargo bench -p ptm-bench --bench micro -- rpc/frame_roundtrip_4k_record | tee -a "$raw"
cargo bench -p ptm-bench --bench obs_overhead -- trace/ingest | tee -a "$raw"

awk -v out="$out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("encoding/encode_10k_vehicles bitmap/and_join_10_mixed_sizes " \
              "rpc/frame_roundtrip_4k_record trace/ingest_untraced " \
              "trace/ingest_traced", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$raw"

echo "==> wrote $out"
cat "$out"

echo "==> cargo bench -p ptm-bench --bench storage"
cargo bench -p ptm-bench --bench storage | tee -a "$store_raw"

awk -v out="$store_out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("store/v1_open_100k store/v2_open_100k " \
              "store/read_hit store/read_miss", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$store_raw"

echo "==> wrote $store_out"
cat "$store_out"

echo "==> cargo bench -p ptm-bench --bench reactor"
cargo bench -p ptm-bench --bench reactor | tee -a "$reactor_raw"

# The trace/ingest medians are reused from the first run above ($raw), so
# the reactor snapshot shares the exact numbers the first file committed.
cat "$raw" >> "$reactor_raw"

awk -v out="$reactor_out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("frame/decode_in_place frame/decode_copy " \
              "reactor/pipelined_ingest reactor/accept_latency " \
              "trace/ingest_untraced trace/ingest_traced", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$reactor_raw"

echo "==> wrote $reactor_out"
cat "$reactor_out"

awk -v out="$deadline_out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("deadline/encode_unstamped deadline/encode_stamped", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$reactor_raw"

echo "==> wrote $deadline_out"
cat "$deadline_out"

echo "==> cargo bench -p ptm-bench --bench analyze"
cargo bench -p ptm-bench --bench analyze | tee -a "$analyze_raw"

# files_scanned is a count, not a median — the bench prints it in the same
# line shape so one awk pass collects everything.
awk -v out="$analyze_out" '
/^bench: / { median[$2] = $4 }
END {
    n = split("analyze/files_scanned analyze/workspace_load " \
              "analyze/full_check analyze/lock_analysis", keys, " ")
    printf "{\n  \"units\": \"median_ns_per_iter (files_scanned: count)\"" > out
    for (i = 1; i <= n; i++) {
        if (!(keys[i] in median)) {
            printf "bench.sh: no median captured for %s\n", keys[i] > "/dev/stderr"
            exit 1
        }
        printf ",\n  \"%s\": %s", keys[i], median[keys[i]] > out
    }
    print "\n}" > out
}' "$analyze_raw"

echo "==> wrote $analyze_out"
cat "$analyze_out"
